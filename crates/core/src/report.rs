//! Plain-text and JSON rendering of tables and figure data series.
//!
//! The experiment harness in `mbfi-bench` uses these helpers to print the
//! rows and series the paper reports, in a form that is easy to diff between
//! runs and against EXPERIMENTS.md.  Machine-readable emission goes through
//! the dependency-free [`json`] writer (the build must work fully offline,
//! so there is no serde here).

use std::fmt::Write as _;

pub mod json {
    //! A minimal hand-rolled JSON writer **and reader**.
    //!
    //! Values are built as a [`Json`] tree and rendered with [`Json::render`].
    //! Only what report emission needs is implemented: objects keep their
    //! insertion order, floats are emitted with enough precision to
    //! round-trip, and non-finite floats become `null` (JSON has no NaN).
    //!
    //! [`Json::parse`] is the matching minimal reader: it accepts exactly the
    //! grammar the writer produces (plus insignificant whitespace), so any
    //! rendered value round-trips.  The telemetry JSONL stream and
    //! `mbfi-monitor --headless` are built on this pair — no serde, fully
    //! offline.

    use std::fmt::Write as _;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Integer (kept exact; JSON numbers are not limited to f64 here).
        Int(i64),
        /// Unsigned integer (kept exact).
        UInt(u64),
        /// Floating point; NaN and infinities render as `null`.
        Num(f64),
        /// String (escaped on render).
        Str(String),
        /// Array.
        Arr(Vec<Json>),
        /// Object with insertion-ordered keys.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// An empty object.
        pub fn object() -> Json {
            Json::Obj(Vec::new())
        }

        /// Insert a key into an object (panics on non-objects).
        pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
            match self {
                Json::Obj(entries) => entries.push((key.into(), value.into())),
                other => panic!("Json::set on non-object {other:?}"),
            }
            self
        }

        /// Render to a compact JSON string.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out);
            out
        }

        fn write(&self, out: &mut String) {
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                Json::UInt(v) => {
                    let _ = write!(out, "{v}");
                }
                Json::Num(v) => {
                    if v.is_finite() {
                        // `{:?}` prints round-trippable f64 (always with a
                        // decimal point or exponent, so it stays a float).
                        let _ = write!(out, "{v:?}");
                    } else {
                        out.push_str("null");
                    }
                }
                Json::Str(s) => write_escaped(out, s),
                Json::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write(out);
                    }
                    out.push(']');
                }
                Json::Obj(entries) => {
                    out.push('{');
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_escaped(out, k);
                        out.push(':');
                        v.write(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    /// Hard cap on the size of a [`Json::parse`] input, in bytes.  The
    /// daemon feeds untrusted wire bytes through this parser; anything
    /// larger than this is rejected up front instead of being tokenised.
    pub const MAX_PARSE_BYTES: usize = 16 * 1024 * 1024;

    /// Hard cap on container nesting in [`Json::parse`].  The parser
    /// recurses per `[`/`{`, so without a limit a few kilobytes of `[[[[…`
    /// overflow the stack; 128 levels is far beyond anything the writer
    /// emits.
    pub const MAX_PARSE_DEPTH: usize = 128;

    /// Error from [`Json::parse`]: byte offset of the failure plus a short
    /// message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct JsonParseError {
        /// Byte offset into the input where parsing failed.
        pub offset: usize,
        /// Human-readable description of the failure.
        pub message: String,
    }

    impl std::fmt::Display for JsonParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "json parse error at byte {}: {}",
                self.offset, self.message
            )
        }
    }

    impl Json {
        /// Parse a JSON document (one value, optionally surrounded by
        /// whitespace).  Integral numbers without fraction/exponent parse as
        /// [`Json::UInt`] when non-negative and [`Json::Int`] when negative;
        /// anything with a `.`, `e` or `E` parses as [`Json::Num`].
        ///
        /// Safe on untrusted input: inputs over [`MAX_PARSE_BYTES`] and
        /// nesting over [`MAX_PARSE_DEPTH`] are rejected with an error, and
        /// every malformed document returns a [`JsonParseError`] carrying
        /// the byte offset of the failure — never a panic.
        pub fn parse(input: &str) -> Result<Json, JsonParseError> {
            if input.len() > MAX_PARSE_BYTES {
                return Err(JsonParseError {
                    offset: MAX_PARSE_BYTES,
                    message: format!(
                        "input is {} bytes; the limit is {MAX_PARSE_BYTES}",
                        input.len()
                    ),
                });
            }
            let mut p = Parser {
                bytes: input.as_bytes(),
                pos: 0,
                depth: 0,
            };
            p.skip_ws();
            let value = p.value()?;
            p.skip_ws();
            if p.pos != p.bytes.len() {
                return Err(p.error("trailing characters after value"));
            }
            Ok(value)
        }

        /// Object field lookup (`None` on non-objects and missing keys).
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Unsigned integer view (`Int`/`UInt` only; negatives are `None`).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::UInt(v) => Some(*v),
                Json::Int(v) => u64::try_from(*v).ok(),
                _ => None,
            }
        }

        /// Float view of any numeric value.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(v) => Some(*v),
                Json::Int(v) => Some(*v as f64),
                Json::UInt(v) => Some(*v as f64),
                _ => None,
            }
        }

        /// String view.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Bool view.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Json::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// Array view.
        pub fn as_array(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
        /// Current container nesting, bounded by [`MAX_PARSE_DEPTH`].
        depth: usize,
    }

    impl Parser<'_> {
        fn error(&self, message: &str) -> JsonParseError {
            JsonParseError {
                offset: self.pos,
                message: message.to_string(),
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, lit: &str) -> bool {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Json, JsonParseError> {
            match self.peek() {
                None => Err(self.error("unexpected end of input")),
                Some(b'n') if self.eat("null") => Ok(Json::Null),
                Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
                Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
                Some(b'"') => self.string().map(Json::Str),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b'-' | b'0'..=b'9') => self.number(),
                Some(_) => Err(self.error("unexpected character")),
            }
        }

        fn enter(&mut self) -> Result<(), JsonParseError> {
            if self.depth >= MAX_PARSE_DEPTH {
                return Err(self.error("containers nested deeper than the limit"));
            }
            self.depth += 1;
            Ok(())
        }

        fn array(&mut self) -> Result<Json, JsonParseError> {
            self.enter()?;
            self.pos += 1; // consume '['
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                self.depth -= 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        self.depth -= 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(self.error("expected ',' or ']' in array")),
                }
            }
        }

        fn object(&mut self) -> Result<Json, JsonParseError> {
            self.enter()?;
            self.pos += 1; // consume '{'
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                self.depth -= 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                self.skip_ws();
                if self.peek() != Some(b'"') {
                    return Err(self.error("expected string key in object"));
                }
                let key = self.string()?;
                self.skip_ws();
                if self.peek() != Some(b':') {
                    return Err(self.error("expected ':' after object key"));
                }
                self.pos += 1;
                self.skip_ws();
                let value = self.value()?;
                entries.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        self.depth -= 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(self.error("expected ',' or '}' in object")),
                }
            }
        }

        fn string(&mut self) -> Result<String, JsonParseError> {
            self.pos += 1; // consume opening quote
            let mut out = String::new();
            loop {
                let start = self.pos;
                // Fast path: copy a run of plain bytes verbatim.
                while let Some(b) = self.peek() {
                    if b == b'"' || b == b'\\' || b < 0x20 {
                        break;
                    }
                    self.pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8 in string"))?,
                );
                match self.peek() {
                    None => return Err(self.error("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hi = self.hex4()?;
                                let c = if (0xD800..0xDC00).contains(&hi) {
                                    // Surrogate pair: expect \uXXXX low half.
                                    if !self.eat("\\u") {
                                        return Err(self.error("lone high surrogate"));
                                    }
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    char::from_u32(hi)
                                };
                                out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            }
                            _ => return Err(self.error("unknown escape character")),
                        }
                    }
                    Some(_) => return Err(self.error("raw control character in string")),
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, JsonParseError> {
            let end = self.pos + 4;
            if end > self.bytes.len() {
                return Err(self.error("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&self.bytes[self.pos..end])
                .map_err(|_| self.error("bad \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| self.error("bad \\u escape"))?;
            self.pos = end;
            Ok(v)
        }

        fn number(&mut self) -> Result<Json, JsonParseError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut float = false;
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.error("bad number"))?;
            if !float {
                // Mirror the builder's `From` impls: unsigned values are
                // `UInt`, so a rendered document parses back variant-for-
                // variant (negatives are the only `Int`s the writer emits
                // from its integer conversions).
                if let Ok(v) = text.parse::<u64>() {
                    return Ok(Json::UInt(v));
                }
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::Int(v));
                }
            }
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.error("bad number"))
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    impl From<bool> for Json {
        fn from(v: bool) -> Json {
            Json::Bool(v)
        }
    }

    impl From<i64> for Json {
        fn from(v: i64) -> Json {
            Json::Int(v)
        }
    }

    impl From<u32> for Json {
        fn from(v: u32) -> Json {
            Json::UInt(v as u64)
        }
    }

    impl From<u64> for Json {
        fn from(v: u64) -> Json {
            Json::UInt(v)
        }
    }

    impl From<usize> for Json {
        fn from(v: usize) -> Json {
            Json::UInt(v as u64)
        }
    }

    impl From<f64> for Json {
        fn from(v: f64) -> Json {
            Json::Num(v)
        }
    }

    impl From<&str> for Json {
        fn from(v: &str) -> Json {
            Json::Str(v.to_string())
        }
    }

    impl From<String> for Json {
        fn from(v: String) -> Json {
            Json::Str(v)
        }
    }

    impl<T: Into<Json>> From<Vec<T>> for Json {
        fn from(v: Vec<T>) -> Json {
            Json::Arr(v.into_iter().map(Into::into).collect())
        }
    }
}

pub use json::{Json, JsonParseError};

/// A simple aligned text table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TextTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let total_width = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total_width));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .take(ncols)
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Render as CSV (for plotting outside the harness).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Render as a JSON object `{title, headers, rows}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("title", self.title.clone());
        obj.set("headers", self.headers.clone());
        obj.set(
            "rows",
            Json::Arr(self.rows.iter().cloned().map(Json::from).collect()),
        );
        obj
    }
}

/// A named data series (one line / bar group of a figure).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    /// Series label (e.g. a win-size configuration).
    pub label: String,
    /// `(x label, y value)` points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }

    /// Maximum y value in the series (NaN-free assumption), 0 when empty.
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }

    /// Render as a JSON object `{label, points: [{x, y}]}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("label", self.label.clone());
        obj.set(
            "points",
            Json::Arr(
                self.points
                    .iter()
                    .map(|(x, y)| {
                        let mut p = Json::object();
                        p.set("x", x.clone());
                        p.set("y", *y);
                        p
                    })
                    .collect(),
            ),
        );
        obj
    }
}

/// Figure data: a collection of series, renderable as a per-x text block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FigureData {
    /// Figure title.
    pub title: String,
    /// Data series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Create an empty figure.
    pub fn new(title: impl Into<String>) -> FigureData {
        FigureData {
            title: title.into(),
            series: Vec::new(),
        }
    }

    /// Render as an aligned table with one column per series.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(self.title.clone(), &[""]);
        table.headers = std::iter::once("x".to_string())
            .chain(self.series.iter().map(|s| s.label.clone()))
            .collect();
        // Collect x labels in the order of the first series.
        let xs: Vec<String> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| x.clone()).collect())
            .unwrap_or_default();
        for x in xs {
            let mut row = vec![x.clone()];
            for s in &self.series {
                let y = s
                    .points
                    .iter()
                    .find(|(px, _)| *px == x)
                    .map(|(_, y)| format!("{y:.2}"))
                    .unwrap_or_else(|| "-".to_string());
                row.push(y);
            }
            table.add_row(row);
        }
        table.render()
    }

    /// Render as a JSON object `{title, series}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("title", self.title.clone());
        obj.set(
            "series",
            Json::Arr(self.series.iter().map(Series::to_json).collect()),
        );
        obj
    }
}

/// Format a percentage with its ± error bar.
pub fn pct_with_ci(pct: f64, half_width_pct: f64) -> String {
    format!("{pct:.2}% ±{half_width_pct:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["program", "sdc%"]);
        t.add_row(vec!["basicmath".into(), "12.50".into()]);
        t.add_row(vec!["qsort".into(), "7.00".into()]);
        let out = t.render();
        assert!(out.contains("Demo"));
        assert!(out.contains("program"));
        assert!(out.contains("basicmath  12.50"));
        let csv = t.to_csv();
        assert!(csv.starts_with("program,sdc%"));
        assert!(csv.contains("qsort,7.00"));
    }

    #[test]
    fn json_writer_escapes_and_renders_all_value_kinds() {
        let mut obj = Json::object();
        obj.set("name", "qu\"ote\\and\nnewline");
        obj.set("int", -3i64);
        obj.set("uint", u64::MAX);
        obj.set("pi", 3.5f64);
        obj.set("nan", f64::NAN);
        obj.set("flag", true);
        obj.set("list", vec![1u64, 2, 3]);
        obj.set("nil", Json::Null);
        assert_eq!(
            obj.render(),
            "{\"name\":\"qu\\\"ote\\\\and\\nnewline\",\"int\":-3,\
             \"uint\":18446744073709551615,\"pi\":3.5,\"nan\":null,\
             \"flag\":true,\"list\":[1,2,3],\"nil\":null}"
        );
        // Control characters use the \u escape.
        assert_eq!(Json::from("a\u{1}b").render(), "\"a\\u0001b\"");
    }

    /// Every control character below 0x20 must leave the writer as an
    /// escape sequence — either one of the short forms (`\n`, `\r`, `\t`) or
    /// a `\u00XX` escape — never as a raw byte, which would be invalid JSON.
    #[test]
    fn all_control_characters_are_escaped() {
        for c in (0u32..0x20).map(|c| char::from_u32(c).unwrap()) {
            let rendered = Json::from(format!("x{c}y")).render();
            let expected = match c {
                '\n' => "\"x\\ny\"".to_string(),
                '\r' => "\"x\\ry\"".to_string(),
                '\t' => "\"x\\ty\"".to_string(),
                c => format!("\"x\\u{:04x}y\"", c as u32),
            };
            assert_eq!(rendered, expected, "control char U+{:04X}", c as u32);
            // The rendered string must contain no raw control bytes at all.
            assert!(
                rendered.bytes().all(|b| b >= 0x20),
                "raw control byte leaked for U+{:04X}: {rendered:?}",
                c as u32
            );
        }
        // Boundary cases: 0x20 (space) and DEL pass through unescaped,
        // quotes and backslashes keep their dedicated escapes.
        assert_eq!(Json::from(" ").render(), "\" \"");
        assert_eq!(Json::from("\u{7f}").render(), "\"\u{7f}\"");
        assert_eq!(Json::from("\"\\").render(), "\"\\\"\\\\\"");
    }

    /// Writer→parser round trip over every value kind, including the string
    /// escapes the writer can produce and non-ASCII text.
    #[test]
    fn json_parse_round_trips_rendered_values() {
        let mut obj = Json::object();
        obj.set("name", "qu\"ote\\and\nnewline\ttab\rcr");
        obj.set("control", "a\u{1}b\u{1f}c");
        obj.set("non_ascii", "héllo → wörld ∑ 日本語 🦀");
        obj.set("int", -3i64);
        obj.set("uint", u64::MAX);
        obj.set("pi", 3.25f64);
        obj.set("tiny", 1.0e-10f64);
        obj.set("flag", true);
        obj.set("list", vec![1u64, 2, 3]);
        obj.set("nil", Json::Null);
        obj.set("nested", {
            let mut n = Json::object();
            n.set("empty_arr", Json::Arr(vec![]));
            n.set("empty_obj", Json::object());
            n
        });
        let rendered = obj.render();
        let parsed = Json::parse(&rendered).expect("rendered JSON must parse");
        assert_eq!(parsed, obj, "parse(render(v)) == v");
        // And the re-render is byte-identical (canonical form is stable).
        assert_eq!(parsed.render(), rendered);
    }

    #[test]
    fn json_parse_accepts_whitespace_and_escapes() {
        let v =
            Json::parse(" { \"a\" : [ 1 , -2.5 , \"\\u0041\\u00e9\" ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("Aé")
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
        // Surrogate pair: U+1F980 (crab) as \ud83e\udd80.
        let crab = Json::parse("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(crab.as_str(), Some("🦀"));
        // Integers beyond i64 become UInt; floats keep their value.
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-9").unwrap(), Json::Int(-9));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Num(2500.0));
    }

    #[test]
    fn json_parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "[1] trailing",
            "\"bad \\q escape\"",
            "\"\\ud83e\"", // lone high surrogate
            "\"raw\u{1}control\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        // Errors carry a byte offset pointing into the input.
        let err = Json::parse("[1, }").unwrap_err();
        assert!(err.offset <= 5);
        assert!(err.to_string().contains("byte"));
    }

    /// Deep nesting is rejected with an error instead of overflowing the
    /// stack — `Json::parse` recurses per container, and the daemon feeds it
    /// untrusted wire bytes.
    #[test]
    fn json_parse_bounds_recursion_depth() {
        // Pathological: a few hundred KiB of unclosed '[' (would previously
        // recurse ~300k frames deep before even failing on EOF).
        let bomb = "[".repeat(300_000);
        let err = Json::parse(&bomb).expect_err("nesting bomb must error");
        assert!(err.message.contains("nested deeper"), "{err}");
        assert_eq!(err.offset, json::MAX_PARSE_DEPTH);
        // Same for objects.
        let obomb = "{\"k\":".repeat(300_000);
        assert!(Json::parse(&obomb).is_err());
        // Nesting at the limit parses; one past it does not.
        let deep = |n: usize| format!("{}0{}", "[".repeat(n), "]".repeat(n));
        assert!(Json::parse(&deep(json::MAX_PARSE_DEPTH)).is_ok());
        assert!(Json::parse(&deep(json::MAX_PARSE_DEPTH + 1)).is_err());
        // The depth counter resets between siblings: many shallow containers
        // in sequence are fine.
        let wide = format!("[{}0]", "[0],".repeat(10_000));
        assert!(Json::parse(&wide).is_ok());
    }

    /// Inputs over the size cap are rejected before tokenisation.
    #[test]
    fn json_parse_bounds_input_size() {
        let huge = format!("\"{}\"", "x".repeat(json::MAX_PARSE_BYTES));
        let err = Json::parse(&huge).expect_err("oversized input must error");
        assert_eq!(err.offset, json::MAX_PARSE_BYTES);
        assert!(err.message.contains("limit"), "{err}");
    }

    /// Every proper prefix of a rendered document is malformed (a truncated
    /// TCP line must produce an error, never a panic or a bogus value).
    #[test]
    fn json_parse_rejects_every_truncation() {
        let mut obj = Json::object();
        obj.set("name", "qu\"ote\\and\nnewline");
        obj.set("crab", "🦀\u{1}");
        obj.set("nums", vec![Json::Int(-3), Json::Num(2.5), Json::UInt(9)]);
        obj.set("nested", {
            let mut n = Json::object();
            n.set("flag", true);
            n.set("nil", Json::Null);
            n
        });
        let rendered = obj.render();
        assert!(Json::parse(&rendered).is_ok());
        for cut in 0..rendered.len() {
            if !rendered.is_char_boundary(cut) {
                continue;
            }
            assert!(
                Json::parse(&rendered[..cut]).is_err(),
                "truncation at byte {cut} must fail: {:?}",
                &rendered[..cut]
            );
        }
    }

    /// Seeded fuzz: random single-byte corruptions of a valid document must
    /// parse to `Ok` or `Err`, never panic, and errors must point inside
    /// the input.
    #[test]
    fn json_parse_survives_seeded_corruption() {
        use crate::rng::{Rng, SmallRng};
        let mut obj = Json::object();
        obj.set("s", "escape\\me \"now\" \u{1f}");
        obj.set("f", -1.25e-3f64);
        obj.set("a", vec![0u64, 1, 2]);
        obj.set("u", "\u{1F980}\u{00e9}");
        let rendered = rendered_bytes(&obj);
        let mut rng = SmallRng::seed_from_u64(0x5EED_F00D);
        for _ in 0..5_000 {
            let mut bytes = rendered.clone();
            let at = rng.gen_range(0..bytes.len() as u64) as usize;
            bytes[at] = rng.gen_range(0u32..=255) as u8;
            // Corruption may break UTF-8; only valid strings reach parse.
            let Ok(text) = std::str::from_utf8(&bytes) else {
                continue;
            };
            if let Err(err) = Json::parse(text) {
                assert!(err.offset <= text.len(), "offset out of range: {err}");
            }
        }
    }

    fn rendered_bytes(v: &Json) -> Vec<u8> {
        v.render().into_bytes()
    }

    #[test]
    fn table_and_figure_emit_json() {
        let mut t = TextTable::new("Demo", &["program", "sdc%"]);
        t.add_row(vec!["qsort".into(), "7.00".into()]);
        assert_eq!(
            t.to_json().render(),
            "{\"title\":\"Demo\",\"headers\":[\"program\",\"sdc%\"],\
             \"rows\":[[\"qsort\",\"7.00\"]]}"
        );

        let mut fig = FigureData::new("Fig");
        let mut s = Series::new("w=1");
        s.push("m=2", 10.25);
        fig.series.push(s);
        assert_eq!(
            fig.to_json().render(),
            "{\"title\":\"Fig\",\"series\":[{\"label\":\"w=1\",\
             \"points\":[{\"x\":\"m=2\",\"y\":10.25}]}]}"
        );
    }

    #[test]
    fn figure_renders_series_by_x() {
        let mut fig = FigureData::new("Fig X");
        let mut a = Series::new("w=1");
        a.push("m=2", 10.0);
        a.push("m=3", 8.0);
        let mut b = Series::new("w=10");
        b.push("m=2", 11.5);
        b.push("m=3", 7.25);
        fig.series.push(a);
        fig.series.push(b);
        let out = fig.render();
        assert!(out.contains("Fig X"));
        assert!(out.contains("w=1"));
        assert!(out.contains("m=2"));
        assert!(out.contains("11.50"));
        assert_eq!(fig.series[0].max_y(), 10.0);
    }

    #[test]
    fn missing_points_render_as_dash() {
        let mut fig = FigureData::new("F");
        let mut a = Series::new("a");
        a.push("x1", 1.0);
        a.push("x2", 2.0);
        let mut b = Series::new("b");
        b.push("x1", 3.0);
        fig.series.push(a);
        fig.series.push(b);
        let out = fig.render();
        assert!(out.lines().any(|l| l.contains("x2") && l.contains('-')));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct_with_ci(12.3456, 0.789), "12.35% ±0.79");
    }

    #[test]
    fn empty_figure_and_table_are_safe() {
        let fig = FigureData::new("empty");
        assert!(fig.render().contains("empty"));
        let t = TextTable::new("", &["a"]);
        assert!(t.render().contains('a'));
    }
}
