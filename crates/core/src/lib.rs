//! # mbfi-core
//!
//! The primary contribution of *"One Bit is (Not) Enough: An Empirical Study
//! of the Impact of Single and Multiple Bit-Flip Errors"* (DSN 2017),
//! re-implemented as a Rust library: a fault-injection engine that injects
//! **single and multiple bit-flip errors** into the registers of dynamic IR
//! instructions, classifies the outcome of every experiment, and implements
//! the paper's three error-space pruning techniques.
//!
//! ## Overview
//!
//! * [`Technique`] — the two injection surfaces, *inject-on-read* and
//!   *inject-on-write* (§III-A).
//! * [`FaultModel`] — single bit-flip, or multiple bit-flips parameterised by
//!   `max-MBF` and `win-size` (§III-C, Table I).
//! * [`ParameterGrid`] — the 182 campaigns per workload used in the paper.
//! * [`GoldenRun`] / [`Experiment`] / [`Campaign`] — fault-free profiling,
//!   single experiments and whole campaigns with outcome statistics.
//! * [`Outcome`] — Benign, Detected-by-hardware-exception, Hang, NoOutput,
//!   SDC (§III-E).
//! * [`replay`] — checkpointed golden-run snapshot & replay: campaigns skip
//!   each experiment's fault-free prefix by restoring a
//!   [`mbfi_vm::VmSnapshot`] checkpoint (see [`CheckpointStore`]).
//! * [`sweep`] — whole-grid campaign matrices on one global, deterministic
//!   work-stealing executor with per-workload shared artifacts (see
//!   [`Sweep`]).
//! * [`adaptive`] — precision-targeted sampling: sweep cells stop at a
//!   target 95 % interval half-width instead of a fixed experiment count
//!   (see [`Precision`]).
//! * [`pruning`] — the three pruning layers answering RQ1–RQ5 (§IV).
//! * [`space`] — error-space size computations (§II-D).
//! * [`stats`] — binomial proportions with 95 % confidence intervals.
//!
//! ## Quick start
//!
//! ```
//! use mbfi_core::{Campaign, CampaignSpec, FaultModel, GoldenRun, Technique, WinSize};
//! use mbfi_ir::{ModuleBuilder, Type};
//!
//! // Build a tiny program that sums 0..100 and prints the result.
//! let mut mb = ModuleBuilder::new("sum");
//! let main = mb.declare("main", &[], None);
//! {
//!     let mut f = mb.define(main);
//!     let acc = f.slot(Type::I64);
//!     f.store(Type::I64, 0i64, acc);
//!     f.counted_loop(Type::I64, 0i64, 100i64, |f, i| {
//!         let cur = f.load(Type::I64, acc);
//!         let next = f.add(Type::I64, cur, i);
//!         f.store(Type::I64, next, acc);
//!     });
//!     let total = f.load(Type::I64, acc);
//!     f.print_i64(total);
//!     f.ret_void();
//! }
//! mb.set_entry(main);
//! let module = mb.finish();
//!
//! // Profile the fault-free run, then run a small single bit-flip campaign.
//! let golden = GoldenRun::capture(&module).unwrap();
//! let spec = CampaignSpec {
//!     technique: Technique::InjectOnRead,
//!     model: FaultModel::single_bit(),
//!     experiments: 50,
//!     seed: 1,
//!     ..CampaignSpec::default()
//! };
//! let result = Campaign::run(&module, &golden, &spec);
//! assert_eq!(result.total(), 50);
//! ```

pub mod adaptive;
pub mod campaign;
pub mod cluster;
pub mod experiment;
pub mod fault_model;
pub mod golden;
pub mod injector;
pub mod outcome;
pub mod pruning;
pub mod replay;
pub mod report;
pub mod rng;
pub mod space;
pub mod stats;
pub mod sweep;
pub mod technique;
pub mod telemetry;

pub use adaptive::{AdaptiveStatus, Precision};
pub use campaign::{Campaign, CampaignResult, CampaignSpec, CampaignWarning};
pub use cluster::{CampaignPoint, ParameterGrid};
pub use experiment::{Experiment, ExperimentResult, ExperimentSpec};
pub use fault_model::{FaultModel, WinSize};
pub use golden::GoldenRun;
pub use injector::{InjectionRecord, InjectorHook};
pub use outcome::{classify, Outcome, OutcomeCounts};
pub use pruning::{BitLevelPruner, DeadSite, PrunedCampaign};
pub use replay::{Checkpoint, CheckpointConfig, CheckpointStore, ReplayCaptureError};
pub use stats::IntervalMethod;
pub use sweep::{
    ClientId, EngineConfig, EngineUnit, JobEvent, JobHandle, JobId, JobSpec, SubmitError, Sweep,
    SweepCampaign, SweepCampaignResult, SweepConfig, SweepEngine, SweepReport, SweepUnit,
};
pub use technique::Technique;
pub use telemetry::{
    CellInfo, EventKind, Metric, MonitorState, NoopSink, TelemetryEvent, TelemetryHub,
    TelemetryLevel, TelemetrySink, TelemetrySnapshot,
};
