//! A single fault-injection experiment.

use crate::fault_model::FaultModel;
use crate::golden::GoldenRun;
use crate::injector::{InjectionRecord, InjectorHook};
use crate::outcome::{classify, Outcome};
use crate::replay::CheckpointStore;
use crate::rng::{Rng, SmallRng};
use crate::technique::Technique;
use crate::telemetry::{Metric, TelemetryLevel, TelemetrySink};
use mbfi_ir::{CompiledModule, Module};
use mbfi_vm::{Vm, WalkerVm};

/// Everything needed to run (and reproduce) one experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentSpec {
    /// Injection technique.
    pub technique: Technique,
    /// Fault model (max-MBF and win-size).
    pub model: FaultModel,
    /// Candidate ordinal of the first injection.
    pub first_target: u64,
    /// Concrete window size for this experiment (pre-sampled when the model
    /// uses a random range).
    pub win_size_value: u64,
    /// Seed for the injector's bit/operand selection.
    pub seed: u64,
    /// Hang threshold as a multiple of the golden dynamic instruction count.
    pub hang_factor: u64,
}

impl ExperimentSpec {
    /// Sample a specification for experiment number `index` of a campaign.
    ///
    /// The first-injection location is drawn uniformly from the golden run's
    /// candidate count; random window ranges are sampled per experiment.
    pub fn sample(
        technique: Technique,
        model: FaultModel,
        golden: &GoldenRun,
        campaign_seed: u64,
        index: u64,
        hang_factor: u64,
    ) -> ExperimentSpec {
        let mut rng = SmallRng::seed_from_u64(
            campaign_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(index),
        );
        let candidates = golden.candidates(technique).max(1);
        ExperimentSpec {
            technique,
            model,
            first_target: rng.gen_range(0..candidates),
            win_size_value: model.win_size.sample(&mut rng),
            seed: rng.next_u64(),
            hang_factor,
        }
    }

    /// Pre-sample every experiment of a campaign, in experiment-index order.
    ///
    /// Sampling is cheap (a few RNG draws per experiment) and depends only on
    /// `(spec.seed, index)`, which is what lets campaign runners batch,
    /// reorder and steal experiments without changing any result.  Both the
    /// per-campaign runner and the whole-grid [`crate::sweep::Sweep`] draw
    /// their specs through this one function so they cannot drift.
    pub fn sample_campaign(spec: &crate::CampaignSpec, golden: &GoldenRun) -> Vec<ExperimentSpec> {
        (0..spec.experiments)
            .map(|index| {
                ExperimentSpec::sample(
                    spec.technique,
                    spec.model,
                    golden,
                    spec.seed,
                    index as u64,
                    spec.hang_factor,
                )
            })
            .collect()
    }

    /// Replay the operand-index draw an inject-on-read [`InjectorHook`] with
    /// this spec's seed will make when it arms at an instruction reading
    /// `reg_reads` register operands.
    ///
    /// The injector's first RNG use is exactly this draw, so the bit-level
    /// pruner can know *which* operand a sampled experiment would corrupt
    /// without touching the experiment's RNG stream.
    pub fn sampled_operand_index(&self, reg_reads: usize) -> usize {
        SmallRng::seed_from_u64(self.seed).gen_range(0..reg_reads.max(1))
    }
}

/// Result of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// The specification that produced this result.
    pub spec: ExperimentSpec,
    /// Outcome category.
    pub outcome: Outcome,
    /// Number of bit-flips actually applied before the run ended
    /// ("activated errors").
    pub activated: u32,
    /// Dynamic instructions executed by the faulty run.
    pub dynamic_instrs: u64,
    /// The applied flips.
    pub injections: Vec<InjectionRecord>,
}

/// Cost accounting of one experiment run, surfaced to telemetry only.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ExperimentCost {
    /// Dynamic instructions skipped by a checkpoint restore, if one happened.
    pub restored_dyn: Option<u64>,
    /// Copy-on-write chunk traffic of the run.
    pub cow: mbfi_vm::CowStats,
}

/// Runs single experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct Experiment;

impl Experiment {
    /// Execute one experiment: run the workload with an [`InjectorHook`]
    /// configured from `spec` and classify the outcome against the golden run.
    ///
    /// Lowers the module and executes through the compiled pipeline.  Callers
    /// that run many experiments on the same workload (campaigns, benches)
    /// should lower once and use [`Experiment::run_compiled`].
    ///
    /// `hang_factor` is taken from the spec verbatim; campaigns validate it
    /// once up front (see [`crate::CampaignSpec::validate`]).
    pub fn run(module: &Module, golden: &GoldenRun, spec: &ExperimentSpec) -> ExperimentResult {
        Self::run_with_store(module, golden, spec, None)
    }

    /// Like [`Experiment::run`], but when a [`CheckpointStore`] is supplied,
    /// restore the deepest checkpoint at or before the first injection point
    /// and execute only the tail.  The result is byte-identical to the full
    /// re-execution path for any spec (see the `replay` module docs for why).
    pub fn run_with_store(
        module: &Module,
        golden: &GoldenRun,
        spec: &ExperimentSpec,
        store: Option<&CheckpointStore>,
    ) -> ExperimentResult {
        let code = CompiledModule::lower(module);
        Self::run_compiled(&code, golden, spec, store)
    }

    /// Execute one experiment on a pre-lowered module — the hot path every
    /// campaign worker runs.
    ///
    /// Deliberately **not** generic over a telemetry sink: the VM
    /// interpreter loop inlines into this function, and duplicating it per
    /// sink monomorphization measurably de-optimizes the copy the telemetry
    /// path runs (~35% on small workloads).  Keeping one non-generic body
    /// means every caller — telemetered or not — executes the same machine
    /// code, which is also what makes the byte-invariance contract easy to
    /// trust.  See [`Experiment::run_compiled_with`] for the observing
    /// wrapper.
    pub fn run_compiled(
        code: &CompiledModule,
        golden: &GoldenRun,
        spec: &ExperimentSpec,
        store: Option<&CheckpointStore>,
    ) -> ExperimentResult {
        Self::run_compiled_inner(code, golden, spec, store).0
    }

    /// The shared non-generic execution body: the result plus the run's cost
    /// accounting (checkpoint restore, copy-on-write chunk traffic).  Costs
    /// are deliberately *not* part of [`ExperimentResult`] — results must
    /// stay byte-identical whether replay or CoW is on, and the cost side
    /// obviously differs between the paths.
    pub(crate) fn run_compiled_inner(
        code: &CompiledModule,
        golden: &GoldenRun,
        spec: &ExperimentSpec,
        store: Option<&CheckpointStore>,
    ) -> (ExperimentResult, ExperimentCost) {
        let mut hook = InjectorHook::new(
            spec.technique,
            spec.model.max_mbf,
            spec.win_size_value,
            spec.first_target,
            spec.seed,
        );
        let limits = golden.faulty_run_limits(spec.hang_factor);
        let mut cost = ExperimentCost::default();
        let mut vm = match store.and_then(|s| s.nearest_for(spec.technique, spec.first_target)) {
            Some(cp) => {
                hook.resume_candidates(cp.candidates_for(spec.technique));
                cost.restored_dyn = Some(cp.snapshot().dyn_count());
                // Fork straight off the shared checkpoint: with CoW enabled
                // this copies no memory at all up front.
                Vm::from_snapshot(code, limits, cp.snapshot())
            }
            None => Vm::new(code, limits),
        };
        let result = vm.run_to_end(&mut hook);
        cost.cow = vm.cow_stats();
        (Self::finish(golden, spec, result, hook), cost)
    }

    /// [`Experiment::run_compiled`] with a telemetry sink: when the
    /// experiment fast-forwards from a checkpoint, the restore and the
    /// dynamic instructions it skipped are published as
    /// [`Metric::CheckpointRestores`] / [`Metric::ReplayInstrsSkipped`], and
    /// the run's copy-on-write traffic as [`Metric::CowChunksCopied`] /
    /// [`Metric::CowRestoreBytesSaved`].  Telemetry never influences the
    /// result (the sink only observes), the execution body stays the one
    /// non-generic [`Experiment::run_compiled_inner`] so it is off the
    /// monomorphization lottery, and the publishing block compiles away for
    /// `NoopSink`.
    pub fn run_compiled_with<S: TelemetrySink>(
        code: &CompiledModule,
        golden: &GoldenRun,
        spec: &ExperimentSpec,
        store: Option<&CheckpointStore>,
        telemetry: &S,
    ) -> ExperimentResult {
        let (result, cost) = Self::run_compiled_inner(code, golden, spec, store);
        if S::ENABLED && telemetry.level() > TelemetryLevel::Off {
            if let Some(skipped) = cost.restored_dyn {
                telemetry.add(Metric::CheckpointRestores, 1);
                telemetry.add(Metric::ReplayInstrsSkipped, skipped);
            }
            if cost.cow.cow_chunks_copied > 0 {
                telemetry.add(Metric::CowChunksCopied, cost.cow.cow_chunks_copied);
            }
            if cost.cow.restore_bytes_saved > 0 {
                telemetry.add(Metric::CowRestoreBytesSaved, cost.cow.restore_bytes_saved);
            }
        }
        result
    }

    /// Execute one experiment on the legacy tree walker.
    ///
    /// Exists for the pipeline-equivalence suite and the `exec_bench`
    /// baseline: for any spec the result must equal [`Experiment::run`]
    /// field for field.  No checkpoint replay — the walker always executes
    /// from instruction zero.
    pub fn run_legacy(
        module: &Module,
        golden: &GoldenRun,
        spec: &ExperimentSpec,
    ) -> ExperimentResult {
        let mut hook = InjectorHook::new(
            spec.technique,
            spec.model.max_mbf,
            spec.win_size_value,
            spec.first_target,
            spec.seed,
        );
        let limits = golden.faulty_run_limits(spec.hang_factor);
        let result = WalkerVm::new(module, limits).run(&mut hook);
        Self::finish(golden, spec, result, hook)
    }

    fn finish(
        golden: &GoldenRun,
        spec: &ExperimentSpec,
        result: mbfi_vm::RunResult,
        hook: InjectorHook,
    ) -> ExperimentResult {
        let outcome = classify(&result, &golden.output);
        ExperimentResult {
            spec: *spec,
            outcome,
            activated: hook.activated(),
            dynamic_instrs: result.dynamic_instrs,
            injections: hook.into_records(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_model::WinSize;
    use mbfi_ir::{ModuleBuilder, Type};

    fn workload() -> Module {
        let mut mb = ModuleBuilder::new("w");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let data = f.alloca(Type::I64, 32i64);
            f.counted_loop(Type::I64, 0i64, 32i64, |f, i| {
                let sq = f.mul(Type::I64, i, i);
                f.store_elem(Type::I64, data, i, sq);
            });
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 32i64, |f, i| {
                let v = f.load_elem(Type::I64, data, i);
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, v);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn sampled_specs_are_reproducible_and_in_range() {
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let model = FaultModel::multi_bit(3, WinSize::Random { lo: 2, hi: 10 });
        let a = ExperimentSpec::sample(Technique::InjectOnRead, model, &golden, 42, 7, 10);
        let b = ExperimentSpec::sample(Technique::InjectOnRead, model, &golden, 42, 7, 10);
        assert_eq!(a, b, "same seed and index give the same spec");
        assert!(a.first_target < golden.candidates(Technique::InjectOnRead));
        assert!((2..=10).contains(&a.win_size_value));
        let c = ExperimentSpec::sample(Technique::InjectOnRead, model, &golden, 42, 8, 10);
        assert_ne!(a, c, "different indices give different specs");
    }

    #[test]
    fn experiments_are_deterministic() {
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let spec = ExperimentSpec::sample(
            Technique::InjectOnWrite,
            FaultModel::single_bit(),
            &golden,
            7,
            3,
            10,
        );
        let r1 = Experiment::run(&m, &golden, &spec);
        let r2 = Experiment::run(&m, &golden, &spec);
        assert_eq!(r1, r2);
        assert!(r1.activated <= 1);
    }

    #[test]
    fn single_bit_experiments_cover_multiple_outcomes() {
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..300 {
            let spec = ExperimentSpec::sample(
                Technique::InjectOnRead,
                FaultModel::single_bit(),
                &golden,
                123,
                i,
                10,
            );
            let r = Experiment::run(&m, &golden, &spec);
            seen.insert(r.outcome);
            assert!(r.activated <= 1);
            assert!(r.injections.len() == r.activated as usize);
        }
        // A realistic workload shows at least benign results, detections and SDCs.
        assert!(seen.contains(&Outcome::Benign), "outcomes seen: {seen:?}");
        assert!(
            seen.contains(&Outcome::DetectedHwException),
            "outcomes seen: {seen:?}"
        );
        assert!(seen.contains(&Outcome::Sdc), "outcomes seen: {seen:?}");
    }

    #[test]
    fn multi_bit_activations_never_exceed_max_mbf() {
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let model = FaultModel::multi_bit(5, WinSize::Fixed(4));
        for i in 0..100 {
            let spec = ExperimentSpec::sample(Technique::InjectOnWrite, model, &golden, 99, i, 10);
            let r = Experiment::run(&m, &golden, &spec);
            assert!(r.activated <= 5);
        }
    }
}
