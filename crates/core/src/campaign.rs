//! Fault-injection campaigns: many experiments with the same fault model on
//! the same workload (§III-E of the paper).

use crate::adaptive::{AdaptiveStatus, Precision};
use crate::cluster::CampaignPoint;
use crate::fault_model::FaultModel;
use crate::golden::GoldenRun;
use crate::outcome::{Outcome, OutcomeCounts};
use crate::replay::CheckpointStore;
use crate::stats::{wald_interval, IntervalMethod, Proportion};
use crate::sweep::{Sweep, SweepCampaign, SweepConfig, SweepUnit};
use crate::technique::Technique;
use crate::telemetry::TelemetrySink;
use mbfi_ir::{CompiledModule, Module};

/// Configuration of one campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSpec {
    /// Injection technique.
    pub technique: Technique,
    /// Fault model.
    pub model: FaultModel,
    /// Number of experiments (the paper uses 10,000; this reproduction
    /// defaults to a smaller, configurable number).
    pub experiments: usize,
    /// Seed from which every experiment's parameters are derived.
    pub seed: u64,
    /// Hang threshold as a multiple of the golden run length.
    pub hang_factor: u64,
    /// Number of worker threads (0 = use all available parallelism).
    pub threads: usize,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::single_bit(),
            experiments: 1_000,
            seed: 0xB17F_11B5,
            hang_factor: 20,
            threads: 0,
        }
    }
}

/// A problem found while validating a [`CampaignSpec`], fixed up with a
/// defensible default instead of failing the campaign.  Surfaced once at
/// campaign start (and printed to stderr) rather than silently patched per
/// experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignWarning {
    /// `hang_factor` was below the minimum of 2× the golden run length — a
    /// faulty run that merely slows down would be misclassified as a hang.
    HangFactorRaised {
        /// The value the spec asked for.
        requested: u64,
        /// The value the campaign runs with.
        used: u64,
    },
    /// The campaign's experiment budget exceeds the single bit-flip error
    /// space `d · b` — every additional experiment beyond the space size
    /// re-samples an already-coverable fault, so the sampling fraction is
    /// clamped to 1.0 (see [`crate::space::ErrorSpace::sampling_fraction`]).
    /// Possible for tiny inputs under an adaptive `max_experiments`.
    SamplingSaturated {
        /// The campaign's experiment budget.
        budget: u64,
        /// The single bit-flip error space size (`d · b`, saturated to u64).
        space: u64,
    },
}

impl CampaignWarning {
    /// Wire encoding: a tagged object (`kind` plus the variant's fields).
    pub fn to_json(&self) -> crate::report::json::Json {
        let mut obj = crate::report::json::Json::object();
        match self {
            CampaignWarning::HangFactorRaised { requested, used } => {
                obj.set("kind", "hang_factor_raised");
                obj.set("requested", *requested);
                obj.set("used", *used);
            }
            CampaignWarning::SamplingSaturated { budget, space } => {
                obj.set("kind", "sampling_saturated");
                obj.set("budget", *budget);
                obj.set("space", *space);
            }
        }
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &crate::report::json::Json) -> Option<CampaignWarning> {
        match v.get("kind")?.as_str()? {
            "hang_factor_raised" => Some(CampaignWarning::HangFactorRaised {
                requested: v.get("requested")?.as_u64()?,
                used: v.get("used")?.as_u64()?,
            }),
            "sampling_saturated" => Some(CampaignWarning::SamplingSaturated {
                budget: v.get("budget")?.as_u64()?,
                space: v.get("space")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

impl std::fmt::Display for CampaignWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignWarning::HangFactorRaised { requested, used } => write!(
                f,
                "hang_factor {requested} is below the minimum; campaign runs with {used}"
            ),
            CampaignWarning::SamplingSaturated { budget, space } => write!(
                f,
                "experiment budget {budget} exceeds the single bit-flip error space {space}; \
                 the sampling fraction is clamped to 1"
            ),
        }
    }
}

impl CampaignSpec {
    /// Build a spec from a grid point, keeping the other defaults.
    pub fn from_point(point: CampaignPoint, experiments: usize, seed: u64) -> CampaignSpec {
        CampaignSpec {
            technique: point.technique,
            model: point.model,
            experiments,
            seed,
            ..CampaignSpec::default()
        }
    }

    /// Wire encoding of the spec (the `mbfi-serve` request/report schema).
    pub fn to_json(&self) -> crate::report::json::Json {
        let mut obj = crate::report::json::Json::object();
        obj.set("technique", self.technique.short_name());
        obj.set("model", self.model.to_json());
        obj.set("experiments", self.experiments);
        obj.set("seed", self.seed);
        obj.set("hang_factor", self.hang_factor);
        obj.set("threads", self.threads);
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &crate::report::json::Json) -> Option<CampaignSpec> {
        Some(CampaignSpec {
            technique: Technique::from_short_name(v.get("technique")?.as_str()?)?,
            model: FaultModel::from_json(v.get("model")?)?,
            experiments: usize::try_from(v.get("experiments")?.as_u64()?).ok()?,
            seed: v.get("seed")?.as_u64()?,
            hang_factor: v.get("hang_factor")?.as_u64()?,
            threads: usize::try_from(v.get("threads")?.as_u64()?).ok()?,
        })
    }

    /// Validate the spec once, returning the (possibly fixed-up) spec the
    /// campaign will actually run plus any warnings.  [`Campaign::run`] calls
    /// this at campaign start and logs the warnings, replacing the old
    /// behaviour of silently clamping `hang_factor` inside every single
    /// `Experiment::run`.
    pub fn validate(&self) -> (CampaignSpec, Vec<CampaignWarning>) {
        let mut spec = *self;
        let mut warnings = Vec::new();
        if spec.hang_factor < 2 {
            warnings.push(CampaignWarning::HangFactorRaised {
                requested: spec.hang_factor,
                used: 2,
            });
            spec.hang_factor = 2;
        }
        (spec, warnings)
    }
}

/// Aggregated results of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The campaign's configuration (after [`CampaignSpec::validate`] fix-ups).
    pub spec: CampaignSpec,
    /// Outcome counts over all experiments.
    pub counts: OutcomeCounts,
    /// Histogram of the number of activated errors per experiment
    /// (index = number of activated flips).
    pub activation_histogram: Vec<u64>,
    /// Histogram of activated errors restricted to experiments that ended in
    /// a hardware exception (used for Fig. 3 / RQ1).
    pub crash_activation_histogram: Vec<u64>,
    /// Validation warnings the campaign ran with, so library callers can
    /// inspect them without scraping stderr (each distinct warning is still
    /// printed to stderr once per run/sweep).
    pub warnings: Vec<CampaignWarning>,
    /// How adaptive precision-targeted sampling ended this cell (realized
    /// intervals, rounds, whether the target was met).  `None` for classic
    /// fixed-n campaigns — the default everywhere.
    pub adaptive: Option<AdaptiveStatus>,
}

impl CampaignResult {
    /// Total number of experiments.
    pub fn total(&self) -> u64 {
        self.counts.total()
    }

    /// SDC percentage.
    pub fn sdc_pct(&self) -> f64 {
        self.counts.sdc_pct()
    }

    /// SDC proportion with its 95 % confidence interval.
    pub fn sdc_proportion(&self) -> Proportion {
        wald_interval(self.counts.sdc, self.counts.total())
    }

    /// Proportion (with CI) of one outcome category.
    pub fn proportion(&self, outcome: Outcome) -> Proportion {
        wald_interval(self.counts.get(outcome), self.counts.total())
    }

    /// SDC proportion with the interval method of choice (adaptive stopping
    /// uses Wilson by default; the paper's error bars are Wald).
    pub fn sdc_proportion_by(&self, method: IntervalMethod) -> Proportion {
        method.interval(self.counts.sdc, self.counts.total())
    }

    /// Detection proportion (hardware exception + hang + no output) with the
    /// interval method of choice.
    pub fn detection_proportion_by(&self, method: IntervalMethod) -> Proportion {
        method.interval(self.counts.detection(), self.counts.total())
    }

    /// Wire encoding of the full result.  Every field round-trips exactly
    /// (floats use the shortest-round-trip writer), so a result that crossed
    /// the serve wire compares byte-identical to the in-process one.
    pub fn to_json(&self) -> crate::report::json::Json {
        let mut obj = crate::report::json::Json::object();
        obj.set("spec", self.spec.to_json());
        obj.set("counts", self.counts.to_json());
        obj.set("activation_histogram", self.activation_histogram.clone());
        obj.set(
            "crash_activation_histogram",
            self.crash_activation_histogram.clone(),
        );
        obj.set(
            "warnings",
            crate::report::json::Json::Arr(self.warnings.iter().map(|w| w.to_json()).collect()),
        );
        obj.set(
            "adaptive",
            match &self.adaptive {
                Some(status) => status.to_json(),
                None => crate::report::json::Json::Null,
            },
        );
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &crate::report::json::Json) -> Option<CampaignResult> {
        let histogram = |key: &str| -> Option<Vec<u64>> {
            v.get(key)?.as_array()?.iter().map(|x| x.as_u64()).collect()
        };
        Some(CampaignResult {
            spec: CampaignSpec::from_json(v.get("spec")?)?,
            counts: OutcomeCounts::from_json(v.get("counts")?)?,
            activation_histogram: histogram("activation_histogram")?,
            crash_activation_histogram: histogram("crash_activation_histogram")?,
            warnings: v
                .get("warnings")?
                .as_array()?
                .iter()
                .map(CampaignWarning::from_json)
                .collect::<Option<Vec<_>>>()?,
            adaptive: match v.get("adaptive")? {
                crate::report::json::Json::Null => None,
                status => Some(AdaptiveStatus::from_json(status)?),
            },
        })
    }

    /// Mean number of activated errors per experiment.
    pub fn mean_activated(&self) -> f64 {
        let total: u64 = self.activation_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .activation_histogram
            .iter()
            .enumerate()
            .map(|(k, n)| k as u64 * n)
            .sum();
        weighted as f64 / total as f64
    }
}

/// Campaign runner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Campaign;

impl Campaign {
    /// Run `spec.experiments` experiments, spreading them over worker threads.
    ///
    /// Lowers the module once and executes every experiment through the
    /// compiled pipeline; callers that run several campaigns on one workload
    /// should lower once themselves and use [`Campaign::run_compiled`].
    pub fn run(module: &Module, golden: &GoldenRun, spec: &CampaignSpec) -> CampaignResult {
        Self::run_with_store(module, golden, spec, None)
    }

    /// Like [`Campaign::run`], with an optional golden-run [`CheckpointStore`]
    /// shared read-only across all worker threads.
    pub fn run_with_store(
        module: &Module,
        golden: &GoldenRun,
        spec: &CampaignSpec,
        store: Option<&CheckpointStore>,
    ) -> CampaignResult {
        let code = CompiledModule::lower(module);
        Self::run_compiled_with_store(&code, golden, spec, store)
    }

    /// Run a campaign on a pre-lowered module.
    pub fn run_compiled(
        code: &CompiledModule,
        golden: &GoldenRun,
        spec: &CampaignSpec,
    ) -> CampaignResult {
        Self::run_compiled_with_store(code, golden, spec, None)
    }

    /// Run a campaign on a pre-lowered module, optionally through a
    /// checkpoint store shared read-only across all worker threads.
    ///
    /// Since the sweep refactor this is a single-cell [`Sweep`]: the
    /// campaign's experiments are pre-sampled, cut into batches and drained
    /// by the sweep's work-stealing worker pool (sized by `spec.threads`).
    /// The result is byte-identical to any other schedule — see the
    /// determinism contract in [`crate::sweep`].
    pub fn run_compiled_with_store(
        code: &CompiledModule,
        golden: &GoldenRun,
        spec: &CampaignSpec,
        store: Option<&CheckpointStore>,
    ) -> CampaignResult {
        crate::sweep::run_single(code, golden, spec, store, None)
    }

    /// [`Campaign::run_compiled_with_store`] with a telemetry sink (e.g. a
    /// [`crate::telemetry::TelemetryHub`]) observing the run: experiment and
    /// batch counters, checkpoint-replay savings, per-cell outcome tallies
    /// and — at [`crate::telemetry::TelemetryLevel::Full`] — the structured
    /// event stream.  Telemetry is strictly an observer: the result is
    /// byte-identical to the untelemetered run for any sink and level.
    pub fn run_compiled_telemetry<S: TelemetrySink>(
        code: &CompiledModule,
        golden: &GoldenRun,
        spec: &CampaignSpec,
        store: Option<&CheckpointStore>,
        telemetry: &S,
    ) -> CampaignResult {
        crate::sweep::run_single_with(code, golden, spec, store, None, telemetry)
    }

    /// Run one campaign with adaptive precision-targeted sampling: keep
    /// adding deterministic rounds of experiments until the SDC and Detection
    /// interval half-widths meet `precision.target_half_width_pct` (or the
    /// `max_experiments` budget runs out).  `spec.experiments` is ignored;
    /// the realized count is in the result's `spec.experiments` /
    /// [`CampaignResult::adaptive`].
    ///
    /// Deterministic like the fixed-n path: the result is byte-identical for
    /// every thread count, and equal to a fixed-n campaign of exactly the
    /// realized length.
    pub fn run_adaptive(
        code: &CompiledModule,
        golden: &GoldenRun,
        spec: &CampaignSpec,
        store: Option<&CheckpointStore>,
        precision: &Precision,
    ) -> CampaignResult {
        crate::sweep::run_single(code, golden, spec, store, Some(*precision))
    }

    /// Run a fixed-n campaign with bit-level static pruning: experiments
    /// whose sampled injection point is provably dead (see
    /// [`crate::pruning::BitLevelPruner`]) are resolved statically instead
    /// of executed.  The result field is byte-identical to
    /// [`Campaign::run_compiled`] with the same spec.
    pub fn run_compiled_pruned(
        code: &CompiledModule,
        golden: &GoldenRun,
        spec: &CampaignSpec,
    ) -> crate::pruning::PrunedCampaign {
        crate::pruning::BitLevelPruner::analyze(code).run_campaign_pruned(code, golden, spec)
    }

    /// Run one campaign per grid point as a single [`Sweep`].  The module is
    /// lowered once and shared by every campaign, and all points run on one
    /// work-stealing worker pool instead of one pool per campaign.
    pub fn run_points(
        module: &Module,
        golden: &GoldenRun,
        points: &[CampaignPoint],
        experiments: usize,
        seed: u64,
    ) -> Vec<CampaignResult> {
        let code = CompiledModule::lower(module);
        let units = [SweepUnit {
            code: &code,
            golden,
            store: None,
        }];
        let campaigns: Vec<SweepCampaign> = points
            .iter()
            .map(|p| SweepCampaign {
                unit: 0,
                spec: CampaignSpec::from_point(*p, experiments, seed),
            })
            .collect();
        Sweep::run(&units, &campaigns, &SweepConfig::default())
            .results
            .into_iter()
            .map(|r| r.result)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_model::WinSize;
    use mbfi_ir::{ModuleBuilder, Type};

    fn workload() -> Module {
        let mut mb = ModuleBuilder::new("w");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let data = f.alloca(Type::I64, 16i64);
            f.counted_loop(Type::I64, 0i64, 16i64, |f, i| {
                let v = f.mul(Type::I64, i, 3i64);
                f.store_elem(Type::I64, data, i, v);
            });
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 16i64, |f, i| {
                let v = f.load_elem(Type::I64, data, i);
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, v);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn campaign_counts_add_up() {
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let spec = CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::single_bit(),
            experiments: 200,
            seed: 5,
            hang_factor: 10,
            threads: 2,
        };
        let r = Campaign::run(&m, &golden, &spec);
        assert_eq!(r.total(), 200);
        let hist_total: u64 = r.activation_histogram.iter().sum();
        assert_eq!(hist_total, 200);
        assert!(r.sdc_pct() >= 0.0 && r.sdc_pct() <= 100.0);
        assert!(r.mean_activated() <= 1.0);
    }

    #[test]
    fn campaign_is_deterministic_regardless_of_thread_count() {
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let base = CampaignSpec {
            technique: Technique::InjectOnWrite,
            model: FaultModel::multi_bit(3, WinSize::Fixed(1)),
            experiments: 120,
            seed: 77,
            hang_factor: 10,
            threads: 1,
        };
        let r1 = Campaign::run(&m, &golden, &base);
        let r2 = Campaign::run(&m, &golden, &CampaignSpec { threads: 4, ..base });
        assert_eq!(r1.counts, r2.counts);
        assert_eq!(r1.activation_histogram, r2.activation_histogram);
    }

    #[test]
    fn multi_bit_campaign_activates_multiple_errors() {
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let spec = CampaignSpec {
            technique: Technique::InjectOnWrite,
            model: FaultModel::multi_bit(4, WinSize::Fixed(0)),
            experiments: 100,
            seed: 3,
            hang_factor: 10,
            threads: 2,
        };
        let r = Campaign::run(&m, &golden, &spec);
        assert_eq!(r.activation_histogram.len(), 5);
        // With win-size = 0 the full burst is applied at one instruction, so
        // many experiments should activate all 4 flips.
        assert!(r.activation_histogram[4] > 0);
        assert!(r.mean_activated() > 1.0);
    }

    #[test]
    fn crash_histogram_only_counts_crashes() {
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let spec = CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::single_bit(),
            experiments: 150,
            seed: 11,
            hang_factor: 10,
            threads: 2,
        };
        let r = Campaign::run(&m, &golden, &spec);
        let crash_total: u64 = r.crash_activation_histogram.iter().sum();
        assert_eq!(crash_total, r.counts.hw_exception);
    }

    #[test]
    fn hang_factor_is_validated_once_at_campaign_start() {
        let (spec, warnings) = CampaignSpec {
            hang_factor: 0,
            ..CampaignSpec::default()
        }
        .validate();
        assert_eq!(spec.hang_factor, 2);
        assert_eq!(
            warnings,
            vec![CampaignWarning::HangFactorRaised {
                requested: 0,
                used: 2
            }]
        );
        assert!(warnings[0].to_string().contains("below the minimum"));

        let (spec, warnings) = CampaignSpec::default().validate();
        assert_eq!(spec.hang_factor, CampaignSpec::default().hang_factor);
        assert!(warnings.is_empty());

        // A campaign with a too-low hang factor runs with the fixed-up value
        // and records it in the result's spec.
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let r = Campaign::run(
            &m,
            &golden,
            &CampaignSpec {
                experiments: 10,
                hang_factor: 1,
                threads: 1,
                ..CampaignSpec::default()
            },
        );
        assert_eq!(r.spec.hang_factor, 2);
        assert_eq!(r.total(), 10);
    }

    #[test]
    fn replayed_campaign_is_byte_identical_to_full_execution() {
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let store = crate::replay::CheckpointStore::capture(
            &m,
            &golden,
            crate::replay::CheckpointConfig::with_interval(25),
        )
        .unwrap();
        for technique in Technique::ALL {
            let spec = CampaignSpec {
                technique,
                model: FaultModel::multi_bit(3, WinSize::Random { lo: 1, hi: 16 }),
                experiments: 120,
                seed: 0xBEE5,
                hang_factor: 10,
                threads: 3,
            };
            let full = Campaign::run(&m, &golden, &spec);
            let replayed = Campaign::run_with_store(&m, &golden, &spec, Some(&store));
            assert_eq!(
                full, replayed,
                "{technique}: replay changed the campaign result"
            );
        }
    }

    #[test]
    fn run_points_produces_one_result_per_point() {
        let m = workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let points = vec![
            CampaignPoint {
                technique: Technique::InjectOnRead,
                model: FaultModel::single_bit(),
            },
            CampaignPoint {
                technique: Technique::InjectOnRead,
                model: FaultModel::multi_bit(2, WinSize::Fixed(1)),
            },
        ];
        let results = Campaign::run_points(&m, &golden, &points, 50, 9);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.total() == 50));
    }
}
