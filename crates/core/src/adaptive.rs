//! Precision-targeted adaptive sampling for campaign sweeps.
//!
//! The paper reports every outcome proportion with a 95 % error bar (§III-E)
//! and sizes its campaigns by statistical sampling, because the multi-bit
//! error space `Σ_{k=2}^{m} (d·b)^k` is astronomically larger than the
//! single-bit space (§II-D).  A fixed experiment count per cell is wasteful
//! under that lens: a cell whose outcome proportions sit near 0 or 1 reaches
//! a tight confidence interval after a few hundred experiments, while a cell
//! near 50 % needs thousands — yet a fixed-n grid gives both the same budget.
//!
//! A [`Precision`] spec turns each sweep cell into a *sequential* sampling
//! problem: the executor runs the cell in deterministic **rounds**, and after
//! each completed round recomputes the 95 % interval half-widths of the two
//! proportions every figure reports — **SDC** and **Detection** — from the
//! merged round counts.  A cell stops as soon as both half-widths are at or
//! below [`Precision::target_half_width_pct`] (never before
//! [`Precision::min_experiments`], never beyond
//! [`Precision::max_experiments`]); its remaining worker capacity flows to
//! unfinished cells through the sweep's work-stealing deques.
//!
//! ## Determinism
//!
//! The stop decision is a pure function of the merged counts of whole
//! completed rounds, and a round's membership is a fixed index range of the
//! campaign's experiment sequence — never a function of which worker ran
//! what, in which order, or how batches were cut.  Adaptive results are
//! therefore byte-identical for every thread count, batch size and steal
//! schedule, and equal to a fixed-n campaign of exactly the realized length
//! (`tests/adaptive_equivalence.rs` pins both properties).
//!
//! ## Why Wilson is the default interval
//!
//! The Wald interval (the paper's error bars) is *degenerate* at the
//! extremes: at 0 or 100 % observed it has half-width exactly 0 for any
//! sample size, so a lucky all-benign first round would satisfy any target
//! immediately.  Adaptive stopping therefore defaults to the Wilson score
//! interval, which stays informative at the extremes
//! ([`IntervalMethod::Wilson`]); the Wald rule remains selectable for
//! experimentation but is not recommended.

use crate::outcome::OutcomeCounts;
use crate::stats::{IntervalMethod, Proportion, Z_95};

/// A precision target for adaptive sampling: stop a sweep cell once the SDC
/// *and* Detection 95 % interval half-widths are at or below the target.
///
/// Hangs off [`crate::SweepConfig::precision`]; `None` (the default) keeps
/// the classic fixed-n behaviour where every cell runs
/// `CampaignSpec::experiments` experiments.  When set, the cell budget is
/// `max_experiments` and `CampaignSpec::experiments` is ignored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precision {
    /// Target interval half-width, in percentage points (the "±" the figures
    /// print).  E.g. `2.5` stops a cell once both monitored proportions are
    /// known to ±2.5 points at 95 % confidence.
    pub target_half_width_pct: f64,
    /// Never stop before this many experiments, no matter how tight the
    /// interval looks — guards against tiny lucky first rounds.  Also the
    /// size of the first round.
    pub min_experiments: usize,
    /// Hard budget per cell; a cell that still misses the target here stops
    /// anyway (and is reported with `reached_target = false`).
    pub max_experiments: usize,
    /// Which interval the stopping rule evaluates.  Default
    /// [`IntervalMethod::Wilson`]; see the module docs for why Wald is unfit
    /// for stopping.
    pub interval: IntervalMethod,
}

impl Default for Precision {
    fn default() -> Self {
        Precision {
            target_half_width_pct: 2.5,
            min_experiments: 100,
            max_experiments: 10_000,
            interval: IntervalMethod::Wilson,
        }
    }
}

impl Precision {
    /// A spec with the given target and the default bounds/interval.
    pub fn with_target(target_half_width_pct: f64) -> Precision {
        Precision {
            target_half_width_pct,
            ..Precision::default()
        }
    }

    /// The spec the executor actually runs: a non-finite or non-positive
    /// target falls back to the default, `min_experiments` is at least 1 and
    /// `max_experiments` at least `min_experiments`.
    pub fn normalized(&self) -> Precision {
        let mut p = *self;
        // NaN-safe: only a finite positive target survives.
        if !(p.target_half_width_pct.is_finite() && p.target_half_width_pct > 0.0) {
            p.target_half_width_pct = Precision::default().target_half_width_pct;
        }
        p.min_experiments = p.min_experiments.max(1);
        p.max_experiments = p.max_experiments.max(p.min_experiments);
        p
    }

    /// Experiments added per round after the first (the first round is
    /// `min_experiments` long): half the minimum, so a cell overshoots the
    /// exact stopping point by at most ~half a first round.
    pub fn round_step(&self) -> usize {
        self.min_experiments.div_ceil(2).max(1)
    }

    /// The per-round experiment budgets of a cell, cumulative and strictly
    /// increasing, ending exactly at `max_experiments`.  Round boundaries are
    /// expressed in *experiments* (not batches), so the executed set is
    /// independent of how batches are cut.
    pub fn round_ends(&self) -> Vec<usize> {
        let p = self.normalized();
        let mut ends = Vec::new();
        let mut n = p.min_experiments.min(p.max_experiments);
        loop {
            ends.push(n);
            if n >= p.max_experiments {
                return ends;
            }
            n = (n + p.round_step()).min(p.max_experiments);
        }
    }

    /// The monitored SDC interval for a merged count state.
    pub fn sdc_interval(&self, counts: &OutcomeCounts) -> Proportion {
        self.interval.interval(counts.sdc, counts.total())
    }

    /// The monitored Detection interval for a merged count state.
    pub fn detection_interval(&self, counts: &OutcomeCounts) -> Proportion {
        self.interval.interval(counts.detection(), counts.total())
    }

    /// The two monitored half-widths, `(SDC, Detection)`, in percentage
    /// points — the pair every adaptive `RoundDone` telemetry event and the
    /// live monitor report for a cell.
    pub fn half_widths(&self, counts: &OutcomeCounts) -> (f64, f64) {
        (
            self.sdc_interval(counts).half_width_pct(),
            self.detection_interval(counts).half_width_pct(),
        )
    }

    /// Whether both monitored half-widths meet the target.
    pub fn target_met(&self, counts: &OutcomeCounts) -> bool {
        self.sdc_interval(counts).half_width_pct() <= self.target_half_width_pct
            && self.detection_interval(counts).half_width_pct() <= self.target_half_width_pct
    }

    /// The stopping rule: true once the cell has at least `min_experiments`
    /// merged experiments *and* both monitored half-widths meet the target.
    pub fn satisfied(&self, counts: &OutcomeCounts) -> bool {
        counts.total() >= self.min_experiments as u64 && self.target_met(counts)
    }

    /// The smallest fixed n that guarantees the target for *any* outcome
    /// proportion — the cell budget a fixed-n campaign must provision when it
    /// cannot adapt, sized at the worst case `p = 0.5`.
    ///
    /// Wald: `n = z² / (4 t²)`.  Wilson at `p̂ = 0.5` has half-width
    /// `z / (2 √(n + z²))`, so `n = z² / (4 t²) − z²`.
    pub fn worst_case_fixed_n(&self) -> usize {
        let p = self.normalized();
        let t = p.target_half_width_pct / 100.0;
        let z2 = Z_95 * Z_95;
        let n = match p.interval {
            IntervalMethod::Wald => z2 / (4.0 * t * t),
            IntervalMethod::Wilson => z2 / (4.0 * t * t) - z2,
        };
        (n.ceil().max(1.0)) as usize
    }

    /// Wire encoding of the spec.
    pub fn to_json(&self) -> crate::report::json::Json {
        let mut obj = crate::report::json::Json::object();
        obj.set("target_half_width_pct", self.target_half_width_pct);
        obj.set("min_experiments", self.min_experiments);
        obj.set("max_experiments", self.max_experiments);
        obj.set("interval", self.interval.label());
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &crate::report::json::Json) -> Option<Precision> {
        Some(Precision {
            target_half_width_pct: v.get("target_half_width_pct")?.as_f64()?,
            min_experiments: usize::try_from(v.get("min_experiments")?.as_u64()?).ok()?,
            max_experiments: usize::try_from(v.get("max_experiments")?.as_u64()?).ok()?,
            interval: IntervalMethod::from_label(v.get("interval")?.as_str()?)?,
        })
    }

    /// The realized status of a finished cell.
    pub fn status(&self, counts: &OutcomeCounts, rounds: u32) -> AdaptiveStatus {
        AdaptiveStatus {
            precision: *self,
            rounds,
            sdc: self.sdc_interval(counts),
            detection: self.detection_interval(counts),
            reached_target: self.target_met(counts),
        }
    }
}

/// How an adaptively sampled cell ended: the realized intervals of the two
/// monitored proportions, how many rounds it took, and whether the target was
/// met (as opposed to hitting `max_experiments`).  Carried in
/// [`crate::CampaignResult::adaptive`]; `None` for fixed-n cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveStatus {
    /// The (normalized) spec the cell ran under.
    pub precision: Precision,
    /// Completed rounds.
    pub rounds: u32,
    /// Realized SDC interval, computed with [`Precision::interval`].
    pub sdc: Proportion,
    /// Realized Detection interval, computed with [`Precision::interval`].
    pub detection: Proportion,
    /// Whether both realized half-widths are at or below the target (false
    /// means the cell exhausted `max_experiments` first).
    pub reached_target: bool,
}

impl AdaptiveStatus {
    /// Experiments the cell actually ran.
    pub fn experiments(&self) -> u64 {
        self.sdc.trials
    }

    /// The larger of the two realized half-widths, in percentage points.
    pub fn realized_half_width_pct(&self) -> f64 {
        self.sdc
            .half_width_pct()
            .max(self.detection.half_width_pct())
    }

    /// Wire encoding of the status.
    pub fn to_json(&self) -> crate::report::json::Json {
        let mut obj = crate::report::json::Json::object();
        obj.set("precision", self.precision.to_json());
        obj.set("rounds", self.rounds);
        obj.set("sdc", self.sdc.to_json());
        obj.set("detection", self.detection.to_json());
        obj.set("reached_target", self.reached_target);
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &crate::report::json::Json) -> Option<AdaptiveStatus> {
        Some(AdaptiveStatus {
            precision: Precision::from_json(v.get("precision")?)?,
            rounds: u32::try_from(v.get("rounds")?.as_u64()?).ok()?,
            sdc: Proportion::from_json(v.get("sdc")?)?,
            detection: Proportion::from_json(v.get("detection")?)?,
            reached_target: v.get("reached_target")?.as_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Outcome;

    fn counts(benign: u64, hw: u64, sdc: u64) -> OutcomeCounts {
        let mut c = OutcomeCounts::default();
        for _ in 0..benign {
            c.record(Outcome::Benign);
        }
        for _ in 0..hw {
            c.record(Outcome::DetectedHwException);
        }
        for _ in 0..sdc {
            c.record(Outcome::Sdc);
        }
        c
    }

    /// Regression for the Wald degeneracy bug: an extreme (all-benign) first
    /// round has zero SDC and zero Detection successes, so the Wald
    /// half-widths are exactly 0 and *any* target would stop the cell right
    /// at `min_experiments`.  The Wilson default keeps sampling.
    #[test]
    fn extreme_first_round_does_not_satisfy_the_wilson_rule() {
        let all_benign = counts(100, 0, 0);
        let wald = Precision {
            interval: IntervalMethod::Wald,
            target_half_width_pct: 0.5,
            min_experiments: 100,
            max_experiments: 10_000,
        };
        // The buggy behaviour adaptive must not default to: Wald stops at an
        // absurd 0.5-point target after 100 all-benign experiments.
        assert!(wald.satisfied(&all_benign));

        let wilson = Precision {
            interval: IntervalMethod::Wilson,
            ..wald
        };
        assert!(
            !wilson.satisfied(&all_benign),
            "Wilson half-width at 0/100 is ~1.8 points, above a 0.5-point target"
        );
        assert_eq!(Precision::default().interval, IntervalMethod::Wilson);

        // Wilson does stop once n genuinely supports the target: at p = 0 the
        // half-width is ~z²/(2(n+z²)), so n ≈ 380 reaches 0.5 points.
        assert!(wilson.satisfied(&counts(500, 0, 0)));
    }

    #[test]
    fn stopping_needs_min_experiments_and_both_proportions() {
        let p = Precision {
            target_half_width_pct: 10.0,
            min_experiments: 50,
            max_experiments: 1_000,
            interval: IntervalMethod::Wilson,
        };
        // Tight enough intervals but below the floor: keep sampling.
        assert!(p.target_met(&counts(30, 0, 0)));
        assert!(!p.satisfied(&counts(30, 0, 0)));
        // Detection at 50 % of 60 is ~12.3 points: SDC alone is not enough.
        let skewed = counts(30, 30, 0);
        assert!(p.sdc_interval(&skewed).half_width_pct() <= 10.0);
        assert!(p.detection_interval(&skewed).half_width_pct() > 10.0);
        assert!(!p.satisfied(&skewed));
        // Both tight and above the floor: stop.
        assert!(p.satisfied(&counts(1_000, 10, 5)));
    }

    #[test]
    fn round_ends_are_batch_independent_and_capped() {
        let p = Precision {
            min_experiments: 100,
            max_experiments: 330,
            ..Precision::default()
        };
        assert_eq!(p.round_ends(), vec![100, 150, 200, 250, 300, 330]);
        // min > max is contradictory; normalization raises the budget to the
        // floor, giving a single round of exactly `min_experiments`.
        let p = Precision {
            min_experiments: 500,
            max_experiments: 200,
            ..Precision::default()
        };
        assert_eq!(p.round_ends(), vec![500]);
        assert_eq!(p.normalized().max_experiments, 500);
        let p = Precision {
            min_experiments: 0,
            max_experiments: 3,
            ..Precision::default()
        };
        assert_eq!(p.normalized().min_experiments, 1);
        assert_eq!(p.round_ends(), vec![1, 2, 3]);
    }

    #[test]
    fn normalization_repairs_bad_targets() {
        let p = Precision {
            target_half_width_pct: f64::NAN,
            ..Precision::default()
        };
        assert_eq!(
            p.normalized().target_half_width_pct,
            Precision::default().target_half_width_pct
        );
        let p = Precision {
            target_half_width_pct: -3.0,
            ..Precision::default()
        };
        assert!(p.normalized().target_half_width_pct > 0.0);
    }

    #[test]
    fn worst_case_fixed_n_guarantees_the_target() {
        for &(target, interval) in &[
            (5.0, IntervalMethod::Wald),
            (5.0, IntervalMethod::Wilson),
            (2.0, IntervalMethod::Wilson),
            (1.0, IntervalMethod::Wald),
        ] {
            let p = Precision {
                target_half_width_pct: target,
                interval,
                ..Precision::default()
            };
            let n = p.worst_case_fixed_n() as u64;
            // At the worst case p = 0.5 the target is met at n...
            let hw = interval.interval(n / 2, n).half_width_pct();
            assert!(hw <= target + 1e-9, "{interval} t={target}: {hw} at n={n}");
            // ...but (up to integer rounding) not much before it.
            let short = (n * 9) / 10;
            let hw = interval.interval(short / 2, short).half_width_pct();
            assert!(hw > target, "{interval} t={target}: already {hw} at 0.9n");
        }
    }

    #[test]
    fn status_reports_realized_precision() {
        let p = Precision {
            target_half_width_pct: 5.0,
            min_experiments: 50,
            max_experiments: 1_000,
            interval: IntervalMethod::Wilson,
        };
        let c = counts(900, 80, 20);
        let s = p.status(&c, 7);
        assert_eq!(s.experiments(), 1_000);
        assert_eq!(s.rounds, 7);
        assert!(s.reached_target);
        assert_eq!(s.sdc, IntervalMethod::Wilson.interval(20, 1_000));
        assert_eq!(s.detection, IntervalMethod::Wilson.interval(80, 1_000));
        assert!(
            (s.realized_half_width_pct() - s.detection.half_width_pct()).abs() < 1e-12,
            "detection is the wider of the two here"
        );
    }
}
