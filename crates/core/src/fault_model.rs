//! Fault models: single bit-flips and multiple bit-flips parameterised by
//! `max-MBF` and `win-size` (§III-C of the paper).

use crate::rng::Rng;
use std::fmt;

/// The dynamic window size between consecutive injections.
///
/// A window of zero means every flip lands in the same dynamic instruction
/// (i.e. the same register); larger windows spread the flips across the
/// instruction stream.  The paper uses six fixed values and three values
/// drawn uniformly from a range (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WinSize {
    /// A constant number of dynamic instructions between injections.
    Fixed(u64),
    /// A value drawn uniformly from `lo..=hi` for each experiment.
    Random {
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
}

impl WinSize {
    /// Sample a concrete window size for one experiment.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match self {
            WinSize::Fixed(v) => *v,
            WinSize::Random { lo, hi } => rng.gen_range(*lo..=*hi),
        }
    }

    /// Whether every flip targets the same instruction (window of zero).
    pub fn is_same_register(&self) -> bool {
        matches!(self, WinSize::Fixed(0))
    }

    /// A short label used in reports (`0`, `1`, `RND(2-10)`, ...).
    pub fn label(&self) -> String {
        match self {
            WinSize::Fixed(v) => v.to_string(),
            WinSize::Random { lo, hi } => format!("RND({lo}-{hi})"),
        }
    }

    /// The largest window this configuration can produce.
    pub fn upper_bound(&self) -> u64 {
        match self {
            WinSize::Fixed(v) => *v,
            WinSize::Random { hi, .. } => *hi,
        }
    }

    /// The smallest window this configuration can produce.
    pub fn lower_bound(&self) -> u64 {
        match self {
            WinSize::Fixed(v) => *v,
            WinSize::Random { lo, .. } => *lo,
        }
    }

    /// Wire encoding: `{"fixed": v}` or `{"lo": lo, "hi": hi}`.
    pub fn to_json(&self) -> crate::report::json::Json {
        let mut obj = crate::report::json::Json::object();
        match self {
            WinSize::Fixed(v) => {
                obj.set("fixed", *v);
            }
            WinSize::Random { lo, hi } => {
                obj.set("lo", *lo);
                obj.set("hi", *hi);
            }
        }
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &crate::report::json::Json) -> Option<WinSize> {
        if let Some(fixed) = v.get("fixed") {
            return Some(WinSize::Fixed(fixed.as_u64()?));
        }
        let lo = v.get("lo")?.as_u64()?;
        let hi = v.get("hi")?.as_u64()?;
        (lo <= hi).then_some(WinSize::Random { lo, hi })
    }
}

impl fmt::Display for WinSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A fault model: how many bit-flips to inject and how far apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultModel {
    /// Maximum number of bit-flip errors injected in one run (`max-MBF`).
    ///
    /// This is an upper bound: the program may crash before all flips are
    /// injected, in which case fewer errors are *activated* (§III-C).
    pub max_mbf: u32,
    /// Dynamic window size between consecutive injections (`win-size`).
    pub win_size: WinSize,
}

impl FaultModel {
    /// The classic single bit-flip model.
    pub fn single_bit() -> FaultModel {
        FaultModel {
            max_mbf: 1,
            win_size: WinSize::Fixed(0),
        }
    }

    /// A multiple bit-flip model with the given parameters.
    pub fn multi_bit(max_mbf: u32, win_size: WinSize) -> FaultModel {
        assert!(max_mbf >= 1, "max-MBF must be at least 1");
        FaultModel { max_mbf, win_size }
    }

    /// Whether this is the single bit-flip model.
    pub fn is_single(&self) -> bool {
        self.max_mbf == 1
    }

    /// Whether all flips land in the same register (`win-size = 0`,
    /// `max-MBF > 1`), the configuration studied in Fig. 2 of the paper.
    pub fn is_same_register_multi(&self) -> bool {
        self.max_mbf > 1 && self.win_size.is_same_register()
    }

    /// Short label like `1-bit` or `m=3,w=100`.
    pub fn label(&self) -> String {
        if self.is_single() {
            "1-bit".to_string()
        } else {
            format!("m={},w={}", self.max_mbf, self.win_size.label())
        }
    }

    /// Wire encoding: `{"max_mbf": m, "win_size": {...}}`.
    pub fn to_json(&self) -> crate::report::json::Json {
        let mut obj = crate::report::json::Json::object();
        obj.set("max_mbf", self.max_mbf);
        obj.set("win_size", self.win_size.to_json());
        obj
    }

    /// Parse the wire encoding back (a `max_mbf` of 0 is malformed).
    pub fn from_json(v: &crate::report::json::Json) -> Option<FaultModel> {
        let max_mbf = u32::try_from(v.get("max_mbf")?.as_u64()?).ok()?;
        let win_size = WinSize::from_json(v.get("win_size")?)?;
        (max_mbf >= 1).then_some(FaultModel { max_mbf, win_size })
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    #[test]
    fn fixed_window_samples_to_itself() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(WinSize::Fixed(10).sample(&mut rng), 10);
        assert!(WinSize::Fixed(0).is_same_register());
        assert!(!WinSize::Fixed(1).is_same_register());
    }

    #[test]
    fn random_window_samples_within_range() {
        let mut rng = SmallRng::seed_from_u64(42);
        let w = WinSize::Random { lo: 11, hi: 100 };
        for _ in 0..200 {
            let v = w.sample(&mut rng);
            assert!((11..=100).contains(&v));
        }
        assert_eq!(w.upper_bound(), 100);
        assert_eq!(w.label(), "RND(11-100)");
    }

    #[test]
    fn model_constructors_and_labels() {
        let s = FaultModel::single_bit();
        assert!(s.is_single());
        assert_eq!(s.label(), "1-bit");

        let m = FaultModel::multi_bit(3, WinSize::Fixed(0));
        assert!(m.is_same_register_multi());
        assert_eq!(m.label(), "m=3,w=0");

        let m = FaultModel::multi_bit(5, WinSize::Random { lo: 2, hi: 10 });
        assert!(!m.is_same_register_multi());
        assert_eq!(m.to_string(), "m=5,w=RND(2-10)");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_mbf_is_rejected() {
        let _ = FaultModel::multi_bit(0, WinSize::Fixed(0));
    }

    /// Every Table I `win-size` entry samples within its own bounds: fixed
    /// windows sample to themselves, random windows stay inside `[lo, hi]`,
    /// and every multi-register entry (the `w > 0` ones) yields at least 1 —
    /// a window of 0 would silently collapse a multi-register campaign into
    /// a same-register one.
    #[test]
    fn table1_win_sizes_sample_within_their_bounds() {
        for (i, w) in crate::cluster::WIN_SIZE_VALUES.iter().enumerate() {
            assert!(w.lower_bound() <= w.upper_bound(), "w{} inverted", i + 1);
            let mut rng = SmallRng::seed_from_u64(0xB17 + i as u64);
            for draw in 0..500 {
                let v = w.sample(&mut rng);
                assert!(
                    (w.lower_bound()..=w.upper_bound()).contains(&v),
                    "w{} ({}) draw {draw} sampled {v} outside [{}, {}]",
                    i + 1,
                    w.label(),
                    w.lower_bound(),
                    w.upper_bound()
                );
                if !w.is_same_register() {
                    assert!(v >= 1, "w{} ({}) sampled a zero window", i + 1, w.label());
                }
            }
        }
    }

    /// Labels are a round-trip-safe identity across the whole 10 × 9 grid:
    /// every `(max-MBF, win-size)` cell (plus the single-bit model) renders
    /// to a distinct label, so report rows and result caches keyed by label
    /// can never collide.
    #[test]
    fn labels_are_unique_across_the_grid() {
        use std::collections::BTreeSet;
        let mut labels = BTreeSet::new();
        let mut models = vec![FaultModel::single_bit()];
        for &m in &crate::cluster::MAX_MBF_VALUES {
            for &w in &crate::cluster::WIN_SIZE_VALUES {
                models.push(FaultModel::multi_bit(m, w));
            }
        }
        assert_eq!(models.len(), 1 + 10 * 9);
        for model in &models {
            assert!(
                labels.insert(model.label()),
                "duplicate label {:?} in the 10 x 9 grid",
                model.label()
            );
        }
        // Window labels alone are unique too (they name Fig. 4/5 series).
        let win_labels: BTreeSet<String> = crate::cluster::WIN_SIZE_VALUES
            .iter()
            .map(WinSize::label)
            .collect();
        assert_eq!(win_labels.len(), crate::cluster::WIN_SIZE_VALUES.len());
    }
}
