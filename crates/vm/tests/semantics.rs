//! Property-based semantics tests: small programs built on the fly must
//! compute the same results as native Rust arithmetic, and structural
//! invariants of execution (instruction counting, output determinism,
//! memory isolation between runs) must hold for arbitrary inputs.

use mbfi_ir::{BinOp, IcmpPred, Module, ModuleBuilder, Operand, Type};
use mbfi_vm::{Limits, NoopHook, RunOutcome, Trap, Vm};
use proptest::prelude::*;

/// Build a program that loads two i64 values from stack slots, applies `op`,
/// and prints the result.
fn binary_program(op: BinOp, a: i64, b: i64) -> Module {
    let mut mb = ModuleBuilder::new("prop-binary");
    let main = mb.declare("main", &[], None);
    {
        let mut f = mb.define(main);
        let sa = f.slot(Type::I64);
        f.store(Type::I64, a, sa);
        let sb = f.slot(Type::I64);
        f.store(Type::I64, b, sb);
        let va = f.load(Type::I64, sa);
        let vb = f.load(Type::I64, sb);
        let r = f.binary(op, Type::I64, va, vb);
        f.print_i64(r);
        f.ret_void();
    }
    mb.set_entry(main);
    mb.finish()
}

fn run(module: &Module) -> (RunOutcome, String) {
    let result = Vm::run_golden(module, Limits::default());
    let text = String::from_utf8_lossy(&result.output).trim().to_string();
    (result.outcome, text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wrapping integer arithmetic matches Rust's wrapping semantics.
    #[test]
    fn prop_wrapping_arithmetic_matches_rust(a in any::<i64>(), b in any::<i64>()) {
        for (op, expected) in [
            (BinOp::Add, a.wrapping_add(b)),
            (BinOp::Sub, a.wrapping_sub(b)),
            (BinOp::Mul, a.wrapping_mul(b)),
            (BinOp::And, a & b),
            (BinOp::Or, a | b),
            (BinOp::Xor, a ^ b),
        ] {
            let (outcome, text) = run(&binary_program(op, a, b));
            prop_assert!(outcome.is_completed());
            prop_assert_eq!(text.parse::<i64>().unwrap(), expected, "op {:?}", op);
        }
    }

    /// Signed division matches Rust, and division by zero traps.
    #[test]
    fn prop_division_semantics(a in any::<i64>(), b in any::<i64>()) {
        let (outcome, text) = run(&binary_program(BinOp::SDiv, a, b));
        if b == 0 || (a == i64::MIN && b == -1) {
            prop_assert_eq!(outcome, RunOutcome::Trapped(Trap::DivideByZero));
        } else {
            prop_assert!(outcome.is_completed());
            prop_assert_eq!(text.parse::<i64>().unwrap(), a / b);
        }
    }

    /// Comparison results match Rust's signed/unsigned comparisons.
    #[test]
    fn prop_comparisons_match_rust(a in any::<i64>(), b in any::<i64>()) {
        let cases: Vec<(IcmpPred, bool)> = vec![
            (IcmpPred::Eq, a == b),
            (IcmpPred::Ne, a != b),
            (IcmpPred::Slt, a < b),
            (IcmpPred::Sge, a >= b),
            (IcmpPred::Ult, (a as u64) < (b as u64)),
            (IcmpPred::Uge, (a as u64) >= (b as u64)),
        ];
        for (pred, expected) in cases {
            let mut mb = ModuleBuilder::new("prop-cmp");
            let main = mb.declare("main", &[], None);
            {
                let mut f = mb.define(main);
                let sa = f.slot(Type::I64);
                f.store(Type::I64, a, sa);
                let va = f.load(Type::I64, sa);
                let c = f.icmp(pred, Type::I64, va, b);
                let wide = f.zext(Type::I1, Type::I64, c);
                f.print_i64(wide);
                f.ret_void();
            }
            mb.set_entry(main);
            let (outcome, text) = run(&mb.finish());
            prop_assert!(outcome.is_completed());
            prop_assert_eq!(text == "1", expected, "pred {:?}", pred);
        }
    }

    /// Stored values round-trip through memory unchanged for every type width.
    #[test]
    fn prop_memory_round_trip(value in any::<i64>()) {
        for ty in [Type::I8, Type::I16, Type::I32, Type::I64] {
            let mut mb = ModuleBuilder::new("prop-mem");
            let main = mb.declare("main", &[], None);
            {
                let mut f = mb.define(main);
                let slot = f.slot(ty);
                f.store(ty, Operand::Const(mbfi_ir::Constant::int(ty, value)), slot);
                let v = f.load(ty, slot);
                let wide = if ty == Type::I64 {
                    v
                } else {
                    f.sext_to_i64(ty, v)
                };
                f.print_i64(wide);
                f.ret_void();
            }
            mb.set_entry(main);
            let (outcome, text) = run(&mb.finish());
            prop_assert!(outcome.is_completed());
            let expected = mbfi_ir::value::sign_extend(
                (value as u64) & ty.bit_mask(),
                ty.bit_width(),
            );
            prop_assert_eq!(text.parse::<i64>().unwrap(), expected, "type {}", ty);
        }
    }

    /// Golden runs are deterministic: same module, same dynamic instruction
    /// count and output, run after run.
    #[test]
    fn prop_runs_are_deterministic(a in any::<i64>(), b in 1i64..1000) {
        let mut mb = ModuleBuilder::new("prop-det");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, a, acc);
            f.counted_loop(Type::I64, 0i64, b % 64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let nxt = f.add(Type::I64, cur, i);
                f.store(Type::I64, nxt, acc);
            });
            let v = f.load(Type::I64, acc);
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let module = mb.finish();
        let r1 = Vm::run_golden(&module, Limits::default());
        let r2 = Vm::run_golden(&module, Limits::default());
        prop_assert_eq!(r1.output, r2.output);
        prop_assert_eq!(r1.dynamic_instrs, r2.dynamic_instrs);
    }

    /// The dynamic instruction count reported by the VM equals the number of
    /// times the hook's on_instr fires.
    #[test]
    fn prop_instruction_accounting(n in 1i64..200) {
        struct Counter(u64);
        impl mbfi_vm::ExecHook for Counter {
            fn on_instr(&mut self, _ctx: &mbfi_vm::InstrContext) {
                self.0 += 1;
            }
        }
        let mut mb = ModuleBuilder::new("prop-count");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let cur = f.load(Type::I64, acc);
                let nxt = f.add(Type::I64, cur, i);
                f.store(Type::I64, nxt, acc);
            });
            let v = f.load(Type::I64, acc);
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let module = mb.finish();
        let mut counter = Counter(0);
        let result = Vm::new(&module, Limits::default()).run(&mut counter);
        prop_assert!(result.outcome.is_completed());
        prop_assert_eq!(counter.0, result.dynamic_instrs);
        // The loop body executes n times; the instruction count grows linearly.
        prop_assert!(result.dynamic_instrs as i64 > 5 * n);
    }
}

#[test]
fn shift_amounts_wrap_modulo_the_width() {
    let (outcome, text) = run(&binary_program(BinOp::Shl, 1, 65));
    assert!(outcome.is_completed());
    assert_eq!(text, "2", "shifting by 65 on i64 behaves like shifting by 1");
}

#[test]
fn memory_is_isolated_between_runs() {
    // A program that increments a global; two consecutive runs must see the
    // same initial state (each VM builds a fresh memory image).
    let mut mb = ModuleBuilder::new("iso");
    let g = mb.global_i64s("counter", &[41]);
    let main = mb.declare("main", &[], None);
    {
        let mut f = mb.define(main);
        let v = f.load(Type::I64, g);
        let v2 = f.add(Type::I64, v, 1i64);
        f.store(Type::I64, v2, g);
        f.print_i64(v2);
        f.ret_void();
    }
    mb.set_entry(main);
    let module = mb.finish();
    let mut hook = NoopHook;
    let r1 = Vm::new(&module, Limits::default()).run(&mut hook);
    let r2 = Vm::new(&module, Limits::default()).run(&mut hook);
    assert_eq!(r1.output, b"42\n");
    assert_eq!(r2.output, b"42\n");
}
