//! Randomised semantics tests (formerly proptest, now a seeded in-file
//! generator so the build has zero external dependencies): small programs
//! built on the fly must compute the same results as native Rust arithmetic,
//! and structural invariants of execution (instruction counting, output
//! determinism, memory isolation between runs) must hold for arbitrary
//! inputs.
//!
//! Each property is exercised on a fixed set of adversarial edge cases plus
//! 64 pseudo-random cases from a deterministic SplitMix64 stream — same
//! inputs on every run, on every machine, so a failure is always
//! reproducible from the test name alone.

use mbfi_ir::{BinOp, CompiledModule, IcmpPred, Module, ModuleBuilder, Operand, Type};
use mbfi_vm::{Limits, NoopHook, RunOutcome, Trap, Vm, WalkerVm};

/// Deterministic input generator (SplitMix64; the engine's own PRNG lives in
/// `mbfi-core`, which this crate must not depend on).
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }
}

/// Adversarial operand values every pairwise property sees first.
const EDGE_CASES: [i64; 8] = [0, 1, -1, 2, -2, i64::MIN, i64::MAX, i64::MIN + 1];

/// Edge-case pairs followed by 64 seeded random pairs.
fn i64_pairs(seed: u64) -> Vec<(i64, i64)> {
    let mut pairs = Vec::new();
    for &a in &EDGE_CASES {
        for &b in &EDGE_CASES {
            pairs.push((a, b));
        }
    }
    let mut g = Gen(seed);
    for _ in 0..64 {
        pairs.push((g.next_i64(), g.next_i64()));
    }
    pairs
}

/// Build a program that loads two i64 values from stack slots, applies `op`,
/// and prints the result.
fn binary_program(op: BinOp, a: i64, b: i64) -> Module {
    let mut mb = ModuleBuilder::new("prop-binary");
    let main = mb.declare("main", &[], None);
    {
        let mut f = mb.define(main);
        let sa = f.slot(Type::I64);
        f.store(Type::I64, a, sa);
        let sb = f.slot(Type::I64);
        f.store(Type::I64, b, sb);
        let va = f.load(Type::I64, sa);
        let vb = f.load(Type::I64, sb);
        let r = f.binary(op, Type::I64, va, vb);
        f.print_i64(r);
        f.ret_void();
    }
    mb.set_entry(main);
    mb.finish()
}

fn run(module: &Module) -> (RunOutcome, String) {
    let result = Vm::run_golden(module, Limits::default());
    // Every property doubles as a differential check: the legacy tree walker
    // must agree with the compiled pipeline on arbitrary generated programs.
    let walked = WalkerVm::run_golden(module, Limits::default());
    assert_eq!(result, walked, "compiled and walker paths diverged");
    let text = String::from_utf8_lossy(&result.output).trim().to_string();
    (result.outcome, text)
}

/// Wrapping integer arithmetic matches Rust's wrapping semantics.
#[test]
fn wrapping_arithmetic_matches_rust() {
    for (a, b) in i64_pairs(0xA217) {
        for (op, expected) in [
            (BinOp::Add, a.wrapping_add(b)),
            (BinOp::Sub, a.wrapping_sub(b)),
            (BinOp::Mul, a.wrapping_mul(b)),
            (BinOp::And, a & b),
            (BinOp::Or, a | b),
            (BinOp::Xor, a ^ b),
        ] {
            let (outcome, text) = run(&binary_program(op, a, b));
            assert!(
                outcome.is_completed(),
                "op {op:?} on ({a}, {b}): {outcome:?}"
            );
            assert_eq!(
                text.parse::<i64>().unwrap(),
                expected,
                "op {op:?} on ({a}, {b})"
            );
        }
    }
}

/// Signed division matches Rust, and division by zero (or MIN / -1
/// overflow) traps.
#[test]
fn division_semantics() {
    for (a, b) in i64_pairs(0xD117) {
        let (outcome, text) = run(&binary_program(BinOp::SDiv, a, b));
        if b == 0 || (a == i64::MIN && b == -1) {
            assert_eq!(
                outcome,
                RunOutcome::Trapped(Trap::DivideByZero),
                "({a}, {b}) must trap"
            );
        } else {
            assert!(outcome.is_completed(), "({a}, {b}): {outcome:?}");
            assert_eq!(text.parse::<i64>().unwrap(), a / b, "({a}, {b})");
        }
    }
}

/// Comparison results match Rust's signed/unsigned comparisons.
#[test]
fn comparisons_match_rust() {
    for (a, b) in i64_pairs(0xC317) {
        let cases: Vec<(IcmpPred, bool)> = vec![
            (IcmpPred::Eq, a == b),
            (IcmpPred::Ne, a != b),
            (IcmpPred::Slt, a < b),
            (IcmpPred::Sge, a >= b),
            (IcmpPred::Ult, (a as u64) < (b as u64)),
            (IcmpPred::Uge, (a as u64) >= (b as u64)),
        ];
        for (pred, expected) in cases {
            let mut mb = ModuleBuilder::new("prop-cmp");
            let main = mb.declare("main", &[], None);
            {
                let mut f = mb.define(main);
                let sa = f.slot(Type::I64);
                f.store(Type::I64, a, sa);
                let va = f.load(Type::I64, sa);
                let c = f.icmp(pred, Type::I64, va, b);
                let wide = f.zext(Type::I1, Type::I64, c);
                f.print_i64(wide);
                f.ret_void();
            }
            mb.set_entry(main);
            let (outcome, text) = run(&mb.finish());
            assert!(outcome.is_completed());
            assert_eq!(text == "1", expected, "pred {pred:?} on ({a}, {b})");
        }
    }
}

/// Stored values round-trip through memory unchanged for every type width.
#[test]
fn memory_round_trip() {
    let mut values: Vec<i64> = EDGE_CASES.to_vec();
    let mut g = Gen(0x3E3);
    values.extend((0..64).map(|_| g.next_i64()));
    for value in values {
        for ty in [Type::I8, Type::I16, Type::I32, Type::I64] {
            let mut mb = ModuleBuilder::new("prop-mem");
            let main = mb.declare("main", &[], None);
            {
                let mut f = mb.define(main);
                let slot = f.slot(ty);
                f.store(ty, Operand::Const(mbfi_ir::Constant::int(ty, value)), slot);
                let v = f.load(ty, slot);
                let wide = if ty == Type::I64 {
                    v
                } else {
                    f.sext_to_i64(ty, v)
                };
                f.print_i64(wide);
                f.ret_void();
            }
            mb.set_entry(main);
            let (outcome, text) = run(&mb.finish());
            assert!(outcome.is_completed());
            let expected =
                mbfi_ir::value::sign_extend((value as u64) & ty.bit_mask(), ty.bit_width());
            assert_eq!(
                text.parse::<i64>().unwrap(),
                expected,
                "type {ty} value {value}"
            );
        }
    }
}

/// Golden runs are deterministic: same module, same dynamic instruction
/// count and output, run after run.
#[test]
fn runs_are_deterministic() {
    let mut g = Gen(0xDE7);
    for _ in 0..64 {
        let a = g.next_i64();
        let b = 1 + (g.next_u64() % 999) as i64;
        let mut mb = ModuleBuilder::new("prop-det");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, a, acc);
            f.counted_loop(Type::I64, 0i64, b % 64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let nxt = f.add(Type::I64, cur, i);
                f.store(Type::I64, nxt, acc);
            });
            let v = f.load(Type::I64, acc);
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let module = mb.finish();
        let r1 = Vm::run_golden(&module, Limits::default());
        let r2 = Vm::run_golden(&module, Limits::default());
        assert_eq!(r1.output, r2.output);
        assert_eq!(r1.dynamic_instrs, r2.dynamic_instrs);
    }
}

/// The dynamic instruction count reported by the VM equals the number of
/// times the hook's on_instr fires.
#[test]
fn instruction_accounting() {
    struct Counter(u64);
    impl mbfi_vm::ExecHook for Counter {
        fn on_instr(&mut self, _ctx: &mbfi_vm::InstrContext) {
            self.0 += 1;
        }
    }
    let mut g = Gen(0xACC);
    let mut loop_counts: Vec<i64> = vec![1, 2, 199];
    loop_counts.extend((0..32).map(|_| 1 + (g.next_u64() % 199) as i64));
    for n in loop_counts {
        let mut mb = ModuleBuilder::new("prop-count");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let cur = f.load(Type::I64, acc);
                let nxt = f.add(Type::I64, cur, i);
                f.store(Type::I64, nxt, acc);
            });
            let v = f.load(Type::I64, acc);
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let module = mb.finish();
        let code = CompiledModule::lower(&module);
        let mut counter = Counter(0);
        let result = Vm::new(&code, Limits::default()).run(&mut counter);
        assert!(result.outcome.is_completed());
        assert_eq!(counter.0, result.dynamic_instrs);
        // The loop body executes n times; the instruction count grows linearly.
        assert!(result.dynamic_instrs as i64 > 5 * n, "n = {n}");
    }
}

#[test]
fn shift_amounts_wrap_modulo_the_width() {
    let (outcome, text) = run(&binary_program(BinOp::Shl, 1, 65));
    assert!(outcome.is_completed());
    assert_eq!(
        text, "2",
        "shifting by 65 on i64 behaves like shifting by 1"
    );
}

#[test]
fn memory_is_isolated_between_runs() {
    // A program that increments a global; two consecutive runs must see the
    // same initial state (each VM builds a fresh memory image).
    let mut mb = ModuleBuilder::new("iso");
    let g = mb.global_i64s("counter", &[41]);
    let main = mb.declare("main", &[], None);
    {
        let mut f = mb.define(main);
        let v = f.load(Type::I64, g);
        let v2 = f.add(Type::I64, v, 1i64);
        f.store(Type::I64, v2, g);
        f.print_i64(v2);
        f.ret_void();
    }
    mb.set_entry(main);
    let module = mb.finish();
    let code = CompiledModule::lower(&module);
    let mut hook = NoopHook;
    let r1 = Vm::new(&code, Limits::default()).run(&mut hook);
    let r2 = Vm::new(&code, Limits::default()).run(&mut hook);
    assert_eq!(r1.output, b"42\n");
    assert_eq!(r2.output, b"42\n");
}
