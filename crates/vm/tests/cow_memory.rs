//! Property test of the chunked copy-on-write memory: a subject `Memory`
//! whose snapshot/restore traffic runs through the CoW fast path is driven
//! through long random interleavings of allocation, boundary-straddling
//! loads/stores, bulk ops, traps, snapshots and restores — in lockstep with
//! an oracle `Memory` that restores through the deep-copy (`cow = false`)
//! baseline.  After every step the two must agree byte for byte on every
//! observable: load results, bulk reads, traps, tops and mapped sizes.
//!
//! The oracle is honest because the deep-copy path never shares a chunk, so
//! any aliasing bug in the CoW path (a write leaking into a snapshot, a
//! restore missing a dirty chunk, stale bytes after a stack pop/regrow)
//! diverges the comparison.

use mbfi_ir::{Global, Type};
use mbfi_vm::{Memory, MemoryLayout, Trap, CHUNK_BYTES};

/// Deterministic xorshift64* so the crate needs no RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const TYPES: [Type; 4] = [Type::I8, Type::I16, Type::I32, Type::I64];

fn fresh_pair() -> (Memory, Memory) {
    // Globals sized to straddle chunk boundaries: one spans 2.5 chunks, one
    // is a small odd-sized tail right after it.
    let globals = [
        Global::zeroed("big", (CHUNK_BYTES * 5 / 2) as u64),
        Global::zeroed("tail", 100),
    ];
    let layout = MemoryLayout::default();
    let subject = Memory::for_globals(&globals, layout);
    let oracle = subject.clone();
    (subject, oracle)
}

/// A random address, biased to mapped regions and chunk boundaries but with
/// a tail of wild (trapping) addresses.
fn pick_addr(rng: &mut Rng, mem: &Memory) -> u64 {
    let layout = mem.layout();
    fn span(rng: &mut Rng, base: u64, len: u64) -> u64 {
        base + rng.below(len + 64).saturating_sub(32)
    }
    match rng.below(10) {
        0..=3 => span(rng, layout.globals_base, (CHUNK_BYTES * 5 / 2) as u64 + 100),
        4..=6 => span(rng, layout.heap_base, mem.heap_top().max(1)),
        7..=8 => span(rng, layout.stack_base, mem.stack_top().max(1)),
        // Wild: unmapped gaps and the far end of the address space.
        _ => rng.next() % (layout.stack_base + layout.stack_size + 4096),
    }
}

/// Compare every observable of the two memories at a sample of addresses.
fn assert_observably_equal(rng: &mut Rng, subject: &Memory, oracle: &Memory, step: usize) {
    assert_eq!(
        subject.heap_top(),
        oracle.heap_top(),
        "step {step}: heap_top"
    );
    assert_eq!(
        subject.stack_top(),
        oracle.stack_top(),
        "step {step}: stack_top"
    );
    assert_eq!(
        subject.data_bytes(),
        oracle.data_bytes(),
        "step {step}: data_bytes"
    );
    for _ in 0..24 {
        let addr = pick_addr(rng, subject);
        let ty = TYPES[rng.below(TYPES.len() as u64) as usize];
        assert_eq!(
            subject.load(ty, addr),
            oracle.load(ty, addr),
            "step {step}: load {ty:?} @ {addr:#x}"
        );
        let len = rng.below(3 * CHUNK_BYTES as u64);
        assert_eq!(
            subject.read_bytes(addr, len),
            oracle.read_bytes(addr, len),
            "step {step}: read_bytes @ {addr:#x} len {len}"
        );
    }
}

#[test]
fn random_interleavings_match_a_deep_copy_oracle() {
    let mut rng = Rng(0xC0_57A7E);
    let (mut subject, mut oracle) = fresh_pair();
    // Parallel snapshot stacks: subject images restore via CoW, oracle
    // images via deep copies.
    let mut snapshots: Vec<(Memory, Memory)> = Vec::new();
    let mut marks: Vec<u64> = vec![0];

    for step in 0..4000 {
        match rng.below(100) {
            // Allocation: grows the heap, occasionally past chunk boundaries.
            0..=9 => {
                let size = rng.below(3 * CHUNK_BYTES as u64);
                let a = subject.heap_alloc(size);
                let b = oracle.heap_alloc(size);
                assert_eq!(a, b, "step {step}: heap_alloc({size})");
            }
            10..=14 => {
                let addr = pick_addr(&mut rng, &subject);
                assert_eq!(
                    subject.heap_free(addr),
                    oracle.heap_free(addr),
                    "step {step}: heap_free @ {addr:#x}"
                );
            }
            // Stack discipline: push frames, pop back to a random mark, and
            // regrow — the stale-byte re-zeroing path.
            15..=24 => {
                marks.push(subject.stack_mark());
                let size = rng.below(2 * CHUNK_BYTES as u64);
                let a = subject.stack_push(size);
                let b = oracle.stack_push(size);
                assert_eq!(a, b, "step {step}: stack_push({size})");
            }
            25..=31 => {
                let idx = rng.below(marks.len() as u64) as usize;
                let mark = marks[idx];
                marks.truncate((idx + 1).max(1));
                subject.stack_pop_to(mark);
                oracle.stack_pop_to(mark);
            }
            // Scalar stores, sometimes misaligned or unmapped (traps).
            32..=51 => {
                let addr = pick_addr(&mut rng, &subject);
                let ty = TYPES[rng.below(TYPES.len() as u64) as usize];
                let bits = rng.next();
                assert_eq!(
                    subject.store(ty, addr, bits),
                    oracle.store(ty, addr, bits),
                    "step {step}: store {ty:?} @ {addr:#x}"
                );
            }
            // Bulk writes/fills/copies straddling chunk boundaries.
            52..=63 => {
                let addr = pick_addr(&mut rng, &subject);
                let len = rng.below(3 * CHUNK_BYTES as u64) as usize;
                let bytes: Vec<u8> = (0..len)
                    .map(|i| (rng.0 as u8).wrapping_add(i as u8))
                    .collect();
                assert_eq!(
                    subject.write_bytes(addr, &bytes),
                    oracle.write_bytes(addr, &bytes),
                    "step {step}: write_bytes @ {addr:#x} len {len}"
                );
            }
            64..=71 => {
                let addr = pick_addr(&mut rng, &subject);
                let len = rng.below(3 * CHUNK_BYTES as u64);
                let value = rng.next() as u8;
                assert_eq!(
                    subject.fill(addr, value, len),
                    oracle.fill(addr, value, len),
                    "step {step}: fill @ {addr:#x} len {len}"
                );
            }
            72..=79 => {
                let dst = pick_addr(&mut rng, &subject);
                let src = pick_addr(&mut rng, &subject);
                let len = rng.below(2 * CHUNK_BYTES as u64);
                assert_eq!(
                    subject.copy(dst, src, len),
                    oracle.copy(dst, src, len),
                    "step {step}: copy {src:#x} -> {dst:#x} len {len}"
                );
            }
            // Snapshot both sides.
            80..=89 => {
                if snapshots.len() < 8 {
                    snapshots.push((subject.snapshot_image(), oracle.snapshot_image()));
                }
            }
            // Restore a random saved pair: CoW on the subject, deep copy on
            // the oracle.
            _ => {
                if let Some(i) =
                    (!snapshots.is_empty()).then(|| rng.below(snapshots.len() as u64) as usize)
                {
                    let (img_s, img_o) = &snapshots[i];
                    subject.restore_from_with(img_s, true);
                    oracle.restore_from_with(img_o, false);
                    marks.retain(|&m| m <= subject.stack_top());
                    if marks.is_empty() {
                        marks.push(0);
                    }
                    // Restores must never be observable as CoW activity on
                    // the deep-copy side.
                    assert_eq!(oracle.cow_stats().restore_bytes_saved, 0, "step {step}");
                }
            }
        }
        if step % 7 == 0 {
            assert_observably_equal(&mut rng, &subject, &oracle, step);
        }
    }
    assert_observably_equal(&mut rng, &subject, &oracle, 4000);
    assert!(
        !snapshots.is_empty(),
        "the interleaving never snapshotted — widen the op mix"
    );
    // The subject must actually have exercised the CoW machinery.
    let stats = subject.cow_stats();
    assert!(
        stats.restore_bytes_saved > 0 && stats.restore_chunks_repointed > 0,
        "subject never took a CoW restore: {stats:?}"
    );
}

/// The trap taxonomy must be identical on both paths even when the subject's
/// chunks are shared with live snapshots (a trapping access must not CoW).
#[test]
fn traps_are_identical_and_do_not_cow() {
    let (mut subject, mut oracle) = fresh_pair();
    let image = subject.snapshot_image();
    subject.restore_from_with(&image, true); // all chunks now shared
    let before = subject.cow_stats().cow_chunks_copied;
    let wild = 0xDEAD_BEEF_0000;
    assert_eq!(
        subject.store(Type::I64, wild, 1),
        oracle.store(Type::I64, wild, 1)
    );
    assert!(matches!(
        subject.store(Type::I64, wild, 1),
        Err(Trap::Segfault { .. })
    ));
    let misaligned = subject.layout().globals_base + 1;
    assert_eq!(
        subject.store(Type::I32, misaligned, 1),
        oracle.store(Type::I32, misaligned, 1)
    );
    assert!(subject.store(Type::I32, misaligned, 1).is_err());
    assert_eq!(
        subject.cow_stats().cow_chunks_copied,
        before,
        "trapping stores must not copy chunks"
    );
}
