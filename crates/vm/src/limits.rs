//! Execution limits for hang detection and resource bounding.

/// Resource limits applied to one program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of dynamic instructions before the run is classified
    /// as a hang.  LLFI sets this to one or two orders of magnitude above
    /// the fault-free execution time (§III-E); campaigns derive it from the
    /// golden run with [`Limits::hang_threshold`].
    pub max_dynamic_instrs: u64,
    /// Maximum call-stack depth before a [`crate::Trap::StackOverflow`].
    pub max_call_depth: usize,
    /// Maximum number of bytes the program may append to its output buffer.
    pub max_output_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_dynamic_instrs: 200_000_000,
            max_call_depth: 512,
            max_output_bytes: 16 << 20,
        }
    }
}

impl Limits {
    /// Limits for a faulty run given the golden run's dynamic instruction
    /// count: the hang threshold is `factor` times the fault-free length
    /// (the paper uses 10x-100x).
    pub fn hang_threshold(golden_dynamic_instrs: u64, factor: u64) -> Limits {
        Limits {
            max_dynamic_instrs: golden_dynamic_instrs.saturating_mul(factor).max(1_000),
            ..Limits::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hang_threshold_scales_golden_length() {
        let l = Limits::hang_threshold(10_000, 100);
        assert_eq!(l.max_dynamic_instrs, 1_000_000);
    }

    #[test]
    fn hang_threshold_has_a_floor_for_tiny_programs() {
        let l = Limits::hang_threshold(3, 10);
        assert_eq!(l.max_dynamic_instrs, 1_000);
    }

    #[test]
    fn hang_threshold_saturates_instead_of_overflowing() {
        let l = Limits::hang_threshold(u64::MAX, 100);
        assert_eq!(l.max_dynamic_instrs, u64::MAX);
    }
}
