//! The IR interpreter.
//!
//! [`Vm::run`] executes a module's entry function to completion, to a trap,
//! or until the dynamic-instruction limit is exceeded, routing every register
//! read and write through the supplied [`ExecHook`].
//!
//! [`Vm::run_until`] pauses execution at an exact dynamic-instruction
//! boundary instead, which combined with [`Vm::snapshot`] /
//! [`Vm::resume_from`] is the substrate for checkpointed golden-run replay.

use crate::hooks::{ExecHook, InstrContext};
use crate::limits::Limits;
use crate::memory::{Memory, MemoryLayout};
use crate::snapshot::VmSnapshot;
use crate::trap::Trap;
use crate::value::Value;
use mbfi_ir::{
    BinOp, CastOp, Constant, FcmpPred, IcmpPred, Instr, Intrinsic, Module, Operand, Reg, Type,
};

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The entry function returned normally.
    Completed {
        /// Value returned by the entry function, if it returns one.
        ret: Option<Value>,
    },
    /// A hardware exception terminated the run.
    Trapped(Trap),
    /// The dynamic-instruction limit was exceeded (hang).
    InstrLimitExceeded,
}

impl RunOutcome {
    /// Whether the run completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }
}

/// Result of one program run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Number of dynamic instructions executed.
    pub dynamic_instrs: u64,
    /// Bytes produced by the print intrinsics.
    pub output: Vec<u8>,
}

/// One activation record.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    func: usize,
    block: usize,
    instr: usize,
    prev_block: usize,
    pub(crate) regs: Vec<Value>,
    stack_mark: u64,
    /// Where the caller wants this frame's return value.
    ret_dest: Option<Reg>,
    /// Context of the `call` instruction, for routing the return-value write
    /// through the hook.
    call_ctx: Option<InstrContext>,
}

/// The virtual machine executing one program run.
pub struct Vm<'m> {
    module: &'m Module,
    mem: Memory,
    limits: Limits,
    output: Vec<u8>,
    dyn_count: u64,
    /// The call stack, innermost frame last.  Empty only when the module has
    /// no entry function or the run has finished.
    stack: Vec<Frame>,
    /// Set once the run has produced its [`RunResult`]; further stepping is a
    /// programming error.
    done: bool,
}

enum Step {
    Next,
    Jump(usize),
    Call(Frame),
    Return(Option<Value>),
}

impl<'m> Vm<'m> {
    /// Create a VM for `module` with default memory layout.
    pub fn new(module: &'m Module, limits: Limits) -> Vm<'m> {
        Vm::with_layout(module, limits, MemoryLayout::default())
    }

    /// Create a VM with an explicit memory layout.
    pub fn with_layout(module: &'m Module, limits: Limits, layout: MemoryLayout) -> Vm<'m> {
        let mut vm = Vm {
            module,
            mem: Memory::for_module(module, layout),
            limits,
            output: Vec::new(),
            dyn_count: 0,
            stack: Vec::new(),
            done: false,
        };
        if let Some(entry) = module.entry {
            let frame = vm.make_frame(entry.index(), &[]);
            vm.stack.push(frame);
        }
        vm
    }

    /// Convenience: run the module's entry function with a no-op hook.
    pub fn run_golden(module: &'m Module, limits: Limits) -> RunResult {
        let mut hook = crate::hooks::NoopHook;
        Vm::new(module, limits).run(&mut hook)
    }

    fn make_frame(&self, func_idx: usize, args: &[Value]) -> Frame {
        let func = &self.module.functions[func_idx];
        let mut regs: Vec<Value> = func.regs.iter().map(|r| Value::zero(r.ty)).collect();
        for (param, arg) in func.params.iter().zip(args) {
            regs[param.index()] = Value::new(func.regs[param.index()].ty, arg.bits);
        }
        Frame {
            func: func_idx,
            block: 0,
            instr: 0,
            prev_block: 0,
            regs,
            stack_mark: self.mem.stack_mark(),
            ret_dest: None,
            call_ctx: None,
        }
    }

    fn resolve_const(&self, c: &Constant) -> Result<Value, Trap> {
        match c {
            Constant::Global { index } => match self.mem.global_addr(*index) {
                Some(addr) => Ok(Value::ptr(addr)),
                None => Err(Trap::Segfault { addr: 0 }),
            },
            other => Ok(Value::from_constant(other)),
        }
    }

    fn read_operand(
        &self,
        frame: &Frame,
        op: &Operand,
        ctx: &InstrContext,
        reg_read_idx: &mut usize,
        hook: &mut dyn ExecHook,
    ) -> Result<Value, Trap> {
        match op {
            Operand::Reg(r) => {
                let value = frame.regs[r.index()];
                let idx = *reg_read_idx;
                *reg_read_idx += 1;
                Ok(hook.on_read(ctx, idx, *r, value))
            }
            Operand::Const(c) => self.resolve_const(c),
        }
    }

    fn write_dest(
        frame: &mut Frame,
        reg: Reg,
        value: Value,
        ctx: &InstrContext,
        hook: &mut dyn ExecHook,
    ) {
        let value = hook.on_write(ctx, reg, value);
        frame.regs[reg.index()] = value;
    }

    fn append_output(&mut self, bytes: &[u8]) {
        let remaining = self.limits.max_output_bytes.saturating_sub(self.output.len());
        let take = remaining.min(bytes.len());
        self.output.extend_from_slice(&bytes[..take]);
    }

    /// Execute the module's entry function, routing register traffic through
    /// `hook`.
    pub fn run(mut self, hook: &mut dyn ExecHook) -> RunResult {
        self.run_until(hook, u64::MAX)
            .expect("a run can never pause at the u64::MAX boundary")
    }

    /// Execute until the run ends or the dynamic-instruction counter reaches
    /// `stop_at`, whichever comes first.
    ///
    /// Returns `Some(result)` when the run ended (completed, trapped, or hit
    /// the instruction limit) and `None` when execution paused at the exact
    /// boundary: `stop_at` instructions have executed and the instruction
    /// with `dyn_index == stop_at` has not.  A paused VM can be resumed by
    /// calling `run_until` (or [`Vm::run`]) again, and its state can be
    /// captured with [`Vm::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if called again after the run has ended.
    pub fn run_until(&mut self, hook: &mut dyn ExecHook, stop_at: u64) -> Option<RunResult> {
        assert!(!self.done, "Vm::run_until called after the run ended");
        // Take the stack into a local for the duration of the loop so the
        // active frame can be borrowed mutably alongside `self` without
        // popping/pushing it on every instruction (this is the hottest loop
        // in the codebase).
        let mut stack = std::mem::take(&mut self.stack);
        let outcome = self.step_loop(hook, stop_at, &mut stack);
        self.stack = stack;
        outcome.map(|o| self.finish(o))
    }

    /// The interpreter loop proper: `Some(outcome)` when the run ended,
    /// `None` when paused at the `stop_at` boundary.
    fn step_loop(
        &mut self,
        hook: &mut dyn ExecHook,
        stop_at: u64,
        stack: &mut Vec<Frame>,
    ) -> Option<RunOutcome> {
        loop {
            if stack.is_empty() {
                // No entry function (a verified module always has one).
                return Some(RunOutcome::Trapped(Trap::InvalidCall { callee: u64::MAX }));
            }
            if self.dyn_count >= self.limits.max_dynamic_instrs {
                return Some(RunOutcome::InstrLimitExceeded);
            }
            if self.dyn_count >= stop_at {
                return None;
            }

            let step = {
                let depth = stack.len();
                let frame = stack.last_mut().expect("non-empty call stack");
                let func = &self.module.functions[frame.func];
                let block = &func.blocks[frame.block];
                if frame.instr >= block.instrs.len() {
                    // A verified module never falls off the end of a block.
                    return Some(RunOutcome::Trapped(Trap::Abort));
                }
                let instr = &block.instrs[frame.instr];
                let ctx = InstrContext {
                    dyn_index: self.dyn_count,
                    func: frame.func,
                    block: frame.block,
                    instr: frame.instr,
                    opcode: instr.opcode(),
                    reg_reads: instr.operands().iter().filter(|o| o.is_reg()).count(),
                    has_dest: instr.dest().is_some(),
                };
                hook.on_instr(&ctx);
                self.dyn_count += 1;

                match self.exec_instr(frame, instr, &ctx, hook, depth) {
                    Ok(step) => step,
                    Err(trap) => return Some(RunOutcome::Trapped(trap)),
                }
            };

            match step {
                Step::Next => {
                    stack.last_mut().unwrap().instr += 1;
                }
                Step::Jump(target) => {
                    let frame = stack.last_mut().unwrap();
                    frame.prev_block = frame.block;
                    frame.block = target;
                    frame.instr = 0;
                }
                Step::Call(new_frame) => {
                    stack.push(new_frame);
                }
                Step::Return(value) => {
                    let finished = stack.pop().unwrap();
                    self.mem.stack_pop_to(finished.stack_mark);
                    match stack.last_mut() {
                        None => return Some(RunOutcome::Completed { ret: value }),
                        Some(caller) => {
                            if let (Some(dest), Some(v)) = (finished.ret_dest, value) {
                                let ctx = finished.call_ctx.expect("call frame has call context");
                                let ty = self.module.functions[caller.func].regs[dest.index()].ty;
                                Self::write_dest(caller, dest, Value::new(ty, v.bits), &ctx, hook);
                            }
                            caller.instr += 1;
                        }
                    }
                }
            }
        }
    }

    /// Capture the complete interpreter state at the current
    /// dynamic-instruction boundary (typically right after [`Vm::run_until`]
    /// paused).
    ///
    /// # Panics
    ///
    /// Panics if the run has already ended — there is no state left to
    /// capture once the [`RunResult`] has been produced.
    pub fn snapshot(&self) -> VmSnapshot {
        assert!(!self.done, "Vm::snapshot called after the run ended");
        VmSnapshot {
            frames: self.stack.clone(),
            mem: self.mem.clone(),
            output: self.output.clone(),
            dyn_count: self.dyn_count,
        }
    }

    /// Restore interpreter state from a snapshot taken on a VM running the
    /// **same module**, replacing this VM's frames, memory, output and
    /// dynamic-instruction counter.  The VM's own [`Limits`] are kept, so a
    /// replay can run under different (e.g. hang-detection) limits than the
    /// capture run.
    pub fn resume_from(&mut self, snapshot: &VmSnapshot) {
        self.stack = snapshot.frames.clone();
        self.mem = snapshot.mem.clone();
        self.output = snapshot.output.clone();
        self.dyn_count = snapshot.dyn_count;
        self.done = false;
    }

    fn finish(&mut self, outcome: RunOutcome) -> RunResult {
        self.done = true;
        RunResult {
            outcome,
            dynamic_instrs: self.dyn_count,
            output: std::mem::take(&mut self.output),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_instr(
        &mut self,
        frame: &mut Frame,
        instr: &Instr,
        ctx: &InstrContext,
        hook: &mut dyn ExecHook,
        depth: usize,
    ) -> Result<Step, Trap> {
        let mut reads = 0usize;
        macro_rules! rd {
            ($op:expr) => {
                self.read_operand(frame, $op, ctx, &mut reads, hook)?
            };
        }

        match instr {
            Instr::Binary { dest, op, ty, lhs, rhs } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                let result = eval_binary(*op, *ty, a, b)?;
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            Instr::Icmp { dest, pred, ty, lhs, rhs } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                let result = Value::bool(eval_icmp(*pred, *ty, a, b));
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            Instr::Fcmp { dest, pred, lhs, rhs, .. } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                let result = Value::bool(eval_fcmp(*pred, a.as_f64(), b.as_f64()));
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            Instr::Cast { dest, op, from_ty, to_ty, src } => {
                let v = rd!(src);
                let result = eval_cast(*op, *from_ty, *to_ty, v);
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            Instr::Select { dest, ty, cond, then_val, else_val } => {
                let c = rd!(cond);
                let t = rd!(then_val);
                let e = rd!(else_val);
                let result = if c.as_bool() { t } else { e };
                Self::write_dest(frame, *dest, Value::new(*ty, result.bits), ctx, hook);
                Ok(Step::Next)
            }
            Instr::Alloca { dest, elem_ty, count } => {
                let n = rd!(count);
                let size = elem_ty.byte_size().saturating_mul(n.as_u64());
                let addr = self.mem.stack_push(size.max(1))?;
                Self::write_dest(frame, *dest, Value::ptr(addr), ctx, hook);
                Ok(Step::Next)
            }
            Instr::Load { dest, ty, addr } => {
                let a = rd!(addr);
                let bits = self.mem.load(*ty, a.as_u64())?;
                Self::write_dest(frame, *dest, Value::new(*ty, bits), ctx, hook);
                Ok(Step::Next)
            }
            Instr::Store { ty, value, addr } => {
                let v = rd!(value);
                let a = rd!(addr);
                self.mem.store(*ty, a.as_u64(), v.bits)?;
                Ok(Step::Next)
            }
            Instr::Gep { dest, base, index, elem_size, offset } => {
                let b = rd!(base);
                let i = rd!(index);
                let addr = (b.as_u64())
                    .wrapping_add((i.as_i64() as u64).wrapping_mul(*elem_size))
                    .wrapping_add(*offset as u64);
                Self::write_dest(frame, *dest, Value::ptr(addr), ctx, hook);
                Ok(Step::Next)
            }
            Instr::Call { dest, callee, args } => {
                if *callee >= self.module.functions.len() {
                    return Err(Trap::InvalidCall {
                        callee: *callee as u64,
                    });
                }
                if depth >= self.limits.max_call_depth {
                    return Err(Trap::StackOverflow);
                }
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(rd!(a));
                }
                let mut new_frame = self.make_frame(*callee, &arg_values);
                new_frame.ret_dest = *dest;
                new_frame.call_ctx = Some(*ctx);
                Ok(Step::Call(new_frame))
            }
            Instr::IntrinsicCall { dest, which, args } => {
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(rd!(a));
                }
                let result = self.exec_intrinsic(*which, &arg_values)?;
                if let (Some(d), Some(v)) = (dest, result) {
                    Self::write_dest(frame, *d, v, ctx, hook);
                }
                Ok(Step::Next)
            }
            Instr::Phi { dest, ty, incoming } => {
                let arm = incoming
                    .iter()
                    .find(|(b, _)| b.index() == frame.prev_block)
                    .or_else(|| incoming.first());
                match arm {
                    Some((_, op)) => {
                        let v = rd!(op);
                        Self::write_dest(frame, *dest, Value::new(*ty, v.bits), ctx, hook);
                        Ok(Step::Next)
                    }
                    None => Err(Trap::Abort),
                }
            }
            Instr::Br { target } => Ok(Step::Jump(target.index())),
            Instr::CondBr { cond, then_bb, else_bb } => {
                let c = rd!(cond);
                let target = if c.as_bool() { then_bb } else { else_bb };
                Ok(Step::Jump(target.index()))
            }
            Instr::Switch { value, default, cases } => {
                let v = rd!(value);
                let target = cases
                    .iter()
                    .find(|(case, _)| *case == v.as_u64())
                    .map(|(_, b)| *b)
                    .unwrap_or(*default);
                Ok(Step::Jump(target.index()))
            }
            Instr::Ret { value } => {
                let v = match value {
                    Some(op) => Some(rd!(op)),
                    None => None,
                };
                Ok(Step::Return(v))
            }
            Instr::Unreachable => Err(Trap::Abort),
        }
    }

    fn exec_intrinsic(&mut self, which: Intrinsic, args: &[Value]) -> Result<Option<Value>, Trap> {
        let arg = |i: usize| args.get(i).copied().unwrap_or(Value::i64(0));
        match which {
            Intrinsic::PrintI64 => {
                let text = format!("{}\n", arg(0).as_i64());
                self.append_output(text.as_bytes());
                Ok(None)
            }
            Intrinsic::PrintF64 => {
                let v = arg(0).as_f64();
                let text = if v.is_finite() {
                    format!("{v:.6}\n")
                } else {
                    format!("{v}\n")
                };
                self.append_output(text.as_bytes());
                Ok(None)
            }
            Intrinsic::PrintChar => {
                self.append_output(&[arg(0).as_u64() as u8]);
                Ok(None)
            }
            Intrinsic::PrintBytes => {
                let addr = arg(0).as_u64();
                let len = arg(1).as_u64().min(self.limits.max_output_bytes as u64);
                let bytes = self.mem.read_bytes(addr, len)?;
                self.append_output(&bytes);
                Ok(None)
            }
            Intrinsic::Abort => Err(Trap::Abort),
            Intrinsic::Malloc => {
                let addr = self.mem.heap_alloc(arg(0).as_u64())?;
                Ok(Some(Value::ptr(addr)))
            }
            Intrinsic::Free => {
                self.mem.heap_free(arg(0).as_u64())?;
                Ok(None)
            }
            Intrinsic::Memcpy => {
                self.mem.copy(arg(0).as_u64(), arg(1).as_u64(), arg(2).as_u64())?;
                Ok(None)
            }
            Intrinsic::Memset => {
                self.mem
                    .fill(arg(0).as_u64(), arg(1).as_u64() as u8, arg(2).as_u64())?;
                Ok(None)
            }
            Intrinsic::Sqrt => Ok(Some(Value::f64(arg(0).as_f64().sqrt()))),
            Intrinsic::Sin => Ok(Some(Value::f64(arg(0).as_f64().sin()))),
            Intrinsic::Cos => Ok(Some(Value::f64(arg(0).as_f64().cos()))),
            Intrinsic::Atan => Ok(Some(Value::f64(arg(0).as_f64().atan()))),
            Intrinsic::Pow => Ok(Some(Value::f64(arg(0).as_f64().powf(arg(1).as_f64())))),
            Intrinsic::Exp => Ok(Some(Value::f64(arg(0).as_f64().exp()))),
            Intrinsic::Log => Ok(Some(Value::f64(arg(0).as_f64().ln()))),
            Intrinsic::Fabs => Ok(Some(Value::f64(arg(0).as_f64().abs()))),
            Intrinsic::Floor => Ok(Some(Value::f64(arg(0).as_f64().floor()))),
            Intrinsic::Ceil => Ok(Some(Value::f64(arg(0).as_f64().ceil()))),
            Intrinsic::Cbrt => Ok(Some(Value::f64(arg(0).as_f64().cbrt()))),
        }
    }
}

/// Evaluate an integer or floating binary operation.
fn eval_binary(op: BinOp, ty: Type, a: Value, b: Value) -> Result<Value, Trap> {
    if op.is_float() {
        let (x, y) = (a.as_f64(), b.as_f64());
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            BinOp::FRem => x % y,
            _ => unreachable!(),
        };
        return Ok(Value::from_f64(ty, r));
    }

    let width = ty.bit_width();
    let ua = a.bits & ty.bit_mask();
    let ub = b.bits & ty.bit_mask();
    let sa = a.as_i64();
    let sb = b.as_i64();
    let bits = match op {
        BinOp::Add => ua.wrapping_add(ub),
        BinOp::Sub => ua.wrapping_sub(ub),
        BinOp::Mul => ua.wrapping_mul(ub),
        BinOp::UDiv => {
            if ub == 0 {
                return Err(Trap::DivideByZero);
            }
            ua / ub
        }
        BinOp::SDiv => {
            if sb == 0 {
                return Err(Trap::DivideByZero);
            }
            if sa == i64::MIN && sb == -1 {
                return Err(Trap::DivideByZero);
            }
            (sa / sb) as u64
        }
        BinOp::URem => {
            if ub == 0 {
                return Err(Trap::DivideByZero);
            }
            ua % ub
        }
        BinOp::SRem => {
            if sb == 0 {
                return Err(Trap::DivideByZero);
            }
            if sa == i64::MIN && sb == -1 {
                return Err(Trap::DivideByZero);
            }
            (sa % sb) as u64
        }
        BinOp::Shl => ua.wrapping_shl(ub as u32 % width),
        BinOp::LShr => ua.wrapping_shr(ub as u32 % width),
        BinOp::AShr => {
            let shift = ub as u32 % width;
            (sign_extend_to_i64(ua, width) >> shift) as u64
        }
        BinOp::And => ua & ub,
        BinOp::Or => ua | ub,
        BinOp::Xor => ua ^ ub,
        _ => unreachable!("float ops handled above"),
    };
    Ok(Value::new(ty, bits))
}

fn sign_extend_to_i64(bits: u64, width: u32) -> i64 {
    mbfi_ir::value::sign_extend(bits, width)
}

/// Evaluate an integer comparison.
fn eval_icmp(pred: IcmpPred, ty: Type, a: Value, b: Value) -> bool {
    let ua = a.bits & ty.bit_mask();
    let ub = b.bits & ty.bit_mask();
    let sa = sign_extend_to_i64(ua, ty.bit_width());
    let sb = sign_extend_to_i64(ub, ty.bit_width());
    match pred {
        IcmpPred::Eq => ua == ub,
        IcmpPred::Ne => ua != ub,
        IcmpPred::Ugt => ua > ub,
        IcmpPred::Uge => ua >= ub,
        IcmpPred::Ult => ua < ub,
        IcmpPred::Ule => ua <= ub,
        IcmpPred::Sgt => sa > sb,
        IcmpPred::Sge => sa >= sb,
        IcmpPred::Slt => sa < sb,
        IcmpPred::Sle => sa <= sb,
    }
}

/// Evaluate a floating-point comparison.
fn eval_fcmp(pred: FcmpPred, x: f64, y: f64) -> bool {
    let unordered = x.is_nan() || y.is_nan();
    match pred {
        FcmpPred::Oeq => !unordered && x == y,
        FcmpPred::One => !unordered && x != y,
        FcmpPred::Ogt => !unordered && x > y,
        FcmpPred::Oge => !unordered && x >= y,
        FcmpPred::Olt => !unordered && x < y,
        FcmpPred::Ole => !unordered && x <= y,
        FcmpPred::Ord => !unordered,
        FcmpPred::Uno => unordered,
        FcmpPred::Ueq => unordered || x == y,
        FcmpPred::Une => unordered || x != y,
    }
}

/// Evaluate a cast.
fn eval_cast(op: CastOp, from_ty: Type, to_ty: Type, v: Value) -> Value {
    match op {
        CastOp::Trunc | CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr | CastOp::ZExt => {
            Value::new(to_ty, v.bits & from_ty.bit_mask())
        }
        CastOp::SExt => {
            let s = sign_extend_to_i64(v.bits & from_ty.bit_mask(), from_ty.bit_width());
            Value::new(to_ty, s as u64)
        }
        CastOp::FpToSi => {
            let f = if from_ty == Type::F32 {
                f32::from_bits(v.bits as u32) as f64
            } else {
                f64::from_bits(v.bits)
            };
            Value::new(to_ty, f as i64 as u64)
        }
        CastOp::FpToUi => {
            let f = if from_ty == Type::F32 {
                f32::from_bits(v.bits as u32) as f64
            } else {
                f64::from_bits(v.bits)
            };
            Value::new(to_ty, f as u64)
        }
        CastOp::SiToFp => {
            let s = sign_extend_to_i64(v.bits & from_ty.bit_mask(), from_ty.bit_width());
            Value::from_f64(to_ty, s as f64)
        }
        CastOp::UiToFp => Value::from_f64(to_ty, (v.bits & from_ty.bit_mask()) as f64),
        CastOp::FpTrunc => Value::f32(f64::from_bits(v.bits) as f32),
        CastOp::FpExt => Value::f64(f32::from_bits(v.bits as u32) as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoopHook;
    use mbfi_ir::{IcmpPred, ModuleBuilder};

    fn run(module: &Module) -> RunResult {
        Vm::run_golden(module, Limits::default())
    }

    #[test]
    fn arithmetic_and_output() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], Some(Type::I32));
        {
            let mut f = mb.define(main);
            let a = f.add(Type::I32, 20i32, 22i32);
            f.print_i64(a);
            f.ret(a);
        }
        mb.set_entry(main);
        let m = mb.finish();
        let r = run(&m);
        assert_eq!(r.output, b"42\n");
        assert!(matches!(r.outcome, RunOutcome::Completed { ret: Some(v) } if v.as_i64() == 42));
    }

    #[test]
    fn loop_sums_correctly() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 100i64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, i);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"4950\n");
    }

    #[test]
    fn function_calls_pass_arguments_and_return_values() {
        let mut mb = ModuleBuilder::new("t");
        let square = mb.declare("square", &[(Type::I64, "x")], Some(Type::I64));
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(square);
            let x = f.param(0);
            let r = f.mul(Type::I64, x, x);
            f.ret(r);
        }
        {
            let mut f = mb.define(main);
            let v = f
                .call(square, &[Operand::Const(Constant::i64(9))], Some(Type::I64))
                .unwrap();
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"81\n");
    }

    #[test]
    fn recursion_works_and_deep_recursion_overflows() {
        let mut mb = ModuleBuilder::new("t");
        let fib = mb.declare("fib", &[(Type::I64, "n")], Some(Type::I64));
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(fib);
            let n = f.param(0);
            let is_base = f.icmp(IcmpPred::Slt, Type::I64, n, 2i64);
            let base_bb = f.new_block("base");
            let rec_bb = f.new_block("rec");
            f.cond_br(is_base, base_bb, rec_bb);
            f.switch_to(base_bb);
            f.ret(n);
            f.switch_to(rec_bb);
            let n1 = f.sub(Type::I64, n, 1i64);
            let n2 = f.sub(Type::I64, n, 2i64);
            let a = f.call(fib, &[Operand::Reg(n1)], Some(Type::I64)).unwrap();
            let b = f.call(fib, &[Operand::Reg(n2)], Some(Type::I64)).unwrap();
            let s = f.add(Type::I64, a, b);
            f.ret(s);
        }
        {
            let mut f = mb.define(main);
            let v = f
                .call(fib, &[Operand::Const(Constant::i64(12))], Some(Type::I64))
                .unwrap();
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"144\n");
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let zero_slot = f.slot(Type::I32);
            f.store(Type::I32, 0i32, zero_slot);
            let z = f.load(Type::I32, zero_slot);
            let d = f.sdiv(Type::I32, 10i32, z);
            f.print_i64(d);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.outcome, RunOutcome::Trapped(Trap::DivideByZero));
    }

    #[test]
    fn wild_pointer_load_segfaults() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let p = f.cast(CastOp::IntToPtr, Type::I64, Type::Ptr, 0x10i64);
            let v = f.load(Type::I64, p);
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert!(matches!(r.outcome, RunOutcome::Trapped(Trap::Segfault { .. })));
    }

    #[test]
    fn infinite_loop_hits_instruction_limit() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let spin = f.new_block("spin");
            f.br(spin);
            f.switch_to(spin);
            f.br(spin);
        }
        mb.set_entry(main);
        let m = mb.finish();
        let mut hook = NoopHook;
        let r = Vm::new(
            &m,
            Limits {
                max_dynamic_instrs: 1_000,
                ..Limits::default()
            },
        )
        .run(&mut hook);
        assert_eq!(r.outcome, RunOutcome::InstrLimitExceeded);
        assert_eq!(r.dynamic_instrs, 1_000);
    }

    #[test]
    fn global_data_and_memory_ops() {
        let mut mb = ModuleBuilder::new("t");
        let table = mb.global_i64s("table", &[10, 20, 30, 40]);
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 4i64, |f, i| {
                let v = f.load_elem(Type::I64, table, i);
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, v);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"100\n");
    }

    #[test]
    fn malloc_memset_memcpy_intrinsics() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let a = f.malloc(32i64);
            let b = f.malloc(32i64);
            f.intrinsic(
                Intrinsic::Memset,
                &[Operand::Reg(a), Operand::Const(Constant::i64(7)), Operand::Const(Constant::i64(8))],
                None,
            );
            f.intrinsic(
                Intrinsic::Memcpy,
                &[Operand::Reg(b), Operand::Reg(a), Operand::Const(Constant::i64(8))],
                None,
            );
            let v = f.load(Type::I8, b);
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"7\n");
    }

    #[test]
    fn float_math_and_printing() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let x = f.sqrt(2.25f64);
            let y = f.fmul(x, 2.0f64);
            f.print_f64(y);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"3.000000\n");
    }

    #[test]
    fn abort_intrinsic_traps() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            f.intrinsic(Intrinsic::Abort, &[], None);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.outcome, RunOutcome::Trapped(Trap::Abort));
    }

    #[test]
    fn switch_selects_matching_case() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let slot = f.slot(Type::I32);
            f.store(Type::I32, 2i32, slot);
            let v = f.load(Type::I32, slot);
            let c1 = f.new_block("one");
            let c2 = f.new_block("two");
            let def = f.new_block("def");
            let out = f.new_block("out");
            f.switch(v, def, &[(1, c1), (2, c2)]);
            f.switch_to(c1);
            f.print_i64(100i64);
            f.br(out);
            f.switch_to(c2);
            f.print_i64(200i64);
            f.br(out);
            f.switch_to(def);
            f.print_i64(300i64);
            f.br(out);
            f.switch_to(out);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"200\n");
    }

    #[test]
    fn select_and_comparisons() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let slot = f.slot(Type::I64);
            f.store(Type::I64, -5i64, slot);
            let x = f.load(Type::I64, slot);
            let neg = f.icmp(IcmpPred::Slt, Type::I64, x, 0i64);
            let negated = f.sub(Type::I64, 0i64, x);
            let abs = f.select(Type::I64, neg, negated, x);
            f.print_i64(abs);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"5\n");
    }

    #[test]
    fn signed_division_overflow_traps() {
        assert_eq!(
            eval_binary(BinOp::SDiv, Type::I64, Value::i64(i64::MIN), Value::i64(-1)),
            Err(Trap::DivideByZero)
        );
        assert_eq!(
            eval_binary(BinOp::SRem, Type::I64, Value::i64(i64::MIN), Value::i64(-1)),
            Err(Trap::DivideByZero)
        );
    }

    #[test]
    fn cast_semantics() {
        assert_eq!(
            eval_cast(CastOp::SExt, Type::I8, Type::I64, Value::new(Type::I8, 0xff)).as_i64(),
            -1
        );
        assert_eq!(
            eval_cast(CastOp::ZExt, Type::I8, Type::I64, Value::new(Type::I8, 0xff)).as_i64(),
            255
        );
        assert_eq!(
            eval_cast(CastOp::FpToSi, Type::F64, Type::I32, Value::f64(-3.7)).as_i64(),
            -3
        );
        assert_eq!(
            eval_cast(CastOp::SiToFp, Type::I32, Type::F64, Value::i32(-2)).as_f64(),
            -2.0
        );
        assert_eq!(
            eval_cast(CastOp::FpExt, Type::F32, Type::F64, Value::f32(1.5)).as_f64(),
            1.5
        );
        assert_eq!(
            eval_cast(CastOp::Trunc, Type::I64, Type::I8, Value::i64(0x1234)).as_u64(),
            0x34
        );
    }

    #[test]
    fn icmp_signed_vs_unsigned() {
        let a = Value::i32(-1);
        let b = Value::i32(1);
        assert!(eval_icmp(IcmpPred::Slt, Type::I32, a, b));
        assert!(!eval_icmp(IcmpPred::Ult, Type::I32, a, b));
        assert!(eval_icmp(IcmpPred::Ugt, Type::I32, a, b));
        assert!(eval_icmp(IcmpPred::Ne, Type::I32, a, b));
    }

    #[test]
    fn fcmp_handles_nan() {
        assert!(!eval_fcmp(FcmpPred::Oeq, f64::NAN, 1.0));
        assert!(eval_fcmp(FcmpPred::Uno, f64::NAN, 1.0));
        assert!(eval_fcmp(FcmpPred::Ord, 1.0, 2.0));
        assert!(eval_fcmp(FcmpPred::Une, f64::NAN, f64::NAN));
        assert!(eval_fcmp(FcmpPred::Ole, 1.0, 1.0));
    }

    #[test]
    fn shifts_wrap_amount_modulo_width() {
        let v = eval_binary(BinOp::Shl, Type::I32, Value::i32(1), Value::i32(33)).unwrap();
        assert_eq!(v.as_u64(), 2);
        let v = eval_binary(BinOp::AShr, Type::I32, Value::i32(-8), Value::i32(2)).unwrap();
        assert_eq!(v.as_i64(), -2);
    }
}
