//! The compiled-bytecode interpreter.
//!
//! [`Vm`] executes a [`CompiledModule`] — the flat, pre-decoded form produced
//! by [`CompiledModule::lower`] — with a single PC-indexed fetch per dynamic
//! instruction and per-instruction static metadata (opcode, register-read
//! count, destination flag) read from the lowering-time table instead of
//! recomputed per step.
//!
//! All hook entry points are generic over `H: ExecHook + ?Sized`: a golden
//! run with a [`crate::NoopHook`] monomorphizes to a loop with zero dispatch
//! overhead, while object-safe callers can still pass `&mut dyn ExecHook`
//! (the unsized instantiation is the thin `dyn` adapter).
//!
//! [`Vm::run`] executes the module's entry function to completion, to a
//! trap, or until the dynamic-instruction limit is exceeded, routing every
//! register read and write through the supplied [`ExecHook`].
//! [`Vm::run_until`] pauses execution at an exact dynamic-instruction
//! boundary instead, which combined with [`Vm::snapshot`] /
//! [`Vm::resume_from`] is the substrate for checkpointed golden-run replay.
//!
//! The legacy tree walker that interprets the [`Module`] structure directly
//! survives as [`crate::WalkerVm`], kept for differential testing and as the
//! baseline the `exec_bench` binary measures against.

use crate::hooks::{ExecHook, InstrContext};
use crate::limits::Limits;
use crate::memory::{Memory, MemoryLayout};
use crate::ops;
use crate::snapshot::VmSnapshot;
use crate::trap::Trap;
use crate::value::Value;
use mbfi_ir::compiled::{CInstr, CompiledModule};
use mbfi_ir::{Constant, Module, Operand, Reg};

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The entry function returned normally.
    Completed {
        /// Value returned by the entry function, if it returns one.
        ret: Option<Value>,
    },
    /// A hardware exception terminated the run.
    Trapped(Trap),
    /// The dynamic-instruction limit was exceeded (hang).
    InstrLimitExceeded,
}

impl RunOutcome {
    /// Whether the run completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }
}

/// Result of one program run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Number of dynamic instructions executed.
    pub dynamic_instrs: u64,
    /// Bytes produced by the print intrinsics.
    pub output: Vec<u8>,
}

/// One activation record.
///
/// Where the tree walker tracked a `(func, block, instr)` triple, a compiled
/// frame holds the flat `pc` plus the function index (for the register
/// table) and the predecessor block (for phi resolution).
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    /// Index of the executing function (register-table / layout lookup).
    func: u32,
    /// Absolute PC of the next instruction to execute.
    pc: usize,
    /// Block index the frame most recently jumped *from* (phi resolution).
    prev_block: u32,
    pub(crate) regs: Vec<Value>,
    stack_mark: u64,
    /// Where the caller wants this frame's return value.
    ret_dest: Option<Reg>,
    /// Context of the `call` instruction, for routing the return-value write
    /// through the hook.
    call_ctx: Option<InstrContext>,
}

/// The virtual machine executing one program run.
pub struct Vm<'c> {
    code: &'c CompiledModule,
    mem: Memory,
    limits: Limits,
    output: Vec<u8>,
    dyn_count: u64,
    /// The call stack, innermost frame last.  Empty only when the module has
    /// no entry function or the run has finished.
    stack: Vec<Frame>,
    /// Set once the run has produced its [`RunResult`]; further stepping is a
    /// programming error.
    done: bool,
}

enum Step {
    Next,
    Jump(usize),
    Call(Frame),
    Return(Option<Value>),
}

impl<'c> Vm<'c> {
    /// Create a VM for a compiled module with the default memory layout.
    pub fn new(code: &'c CompiledModule, limits: Limits) -> Vm<'c> {
        Vm::with_layout(code, limits, MemoryLayout::default())
    }

    /// Create a VM with an explicit memory layout.
    pub fn with_layout(code: &'c CompiledModule, limits: Limits, layout: MemoryLayout) -> Vm<'c> {
        let mut vm = Vm {
            code,
            mem: Memory::for_globals(&code.globals, layout),
            limits,
            output: Vec::new(),
            dyn_count: 0,
            stack: Vec::new(),
            done: false,
        };
        if let Some(entry) = code.entry {
            let frame = vm.make_frame(entry, &[]);
            vm.stack.push(frame);
        }
        vm
    }

    /// Convenience: lower `module` and run its entry function with a no-op
    /// hook.  For repeated runs, lower once with [`CompiledModule::lower`]
    /// and reuse the result.
    pub fn run_golden(module: &Module, limits: Limits) -> RunResult {
        let code = CompiledModule::lower(module);
        Vm::run_golden_compiled(&code, limits)
    }

    /// Run a pre-lowered module's entry function with a no-op hook.
    pub fn run_golden_compiled(code: &CompiledModule, limits: Limits) -> RunResult {
        let mut hook = crate::hooks::NoopHook;
        Vm::new(code, limits).run(&mut hook)
    }

    /// The compiled module this VM executes.
    pub fn code(&self) -> &'c CompiledModule {
        self.code
    }

    fn make_frame(&self, func_idx: usize, args: &[Value]) -> Frame {
        let layout = &self.code.funcs[func_idx];
        let mut regs: Vec<Value> = layout.reg_tys.iter().map(|ty| Value::zero(*ty)).collect();
        for (param, arg) in layout.params.iter().zip(args) {
            let idx = *param as usize;
            regs[idx] = Value::new(layout.reg_tys[idx], arg.bits);
        }
        Frame {
            func: func_idx as u32,
            pc: layout.entry_pc,
            prev_block: 0,
            regs,
            stack_mark: self.mem.stack_mark(),
            ret_dest: None,
            call_ctx: None,
        }
    }

    fn resolve_const(&self, c: &Constant) -> Result<Value, Trap> {
        match c {
            Constant::Global { index } => match self.mem.global_addr(*index) {
                Some(addr) => Ok(Value::ptr(addr)),
                None => Err(Trap::Segfault { addr: 0 }),
            },
            other => Ok(Value::from_constant(other)),
        }
    }

    fn read_operand<H: ExecHook + ?Sized>(
        &self,
        frame: &Frame,
        op: &Operand,
        ctx: &InstrContext,
        reg_read_idx: &mut usize,
        hook: &mut H,
    ) -> Result<Value, Trap> {
        match op {
            Operand::Reg(r) => {
                let value = frame.regs[r.index()];
                let idx = *reg_read_idx;
                *reg_read_idx += 1;
                Ok(hook.on_read(ctx, idx, *r, value))
            }
            Operand::Const(c) => self.resolve_const(c),
        }
    }

    fn write_dest<H: ExecHook + ?Sized>(
        frame: &mut Frame,
        reg: Reg,
        value: Value,
        ctx: &InstrContext,
        hook: &mut H,
    ) {
        let value = hook.on_write(ctx, reg, value);
        frame.regs[reg.index()] = value;
    }

    /// Execute the module's entry function, routing register traffic through
    /// `hook`.
    pub fn run<H: ExecHook + ?Sized>(mut self, hook: &mut H) -> RunResult {
        self.run_to_end(hook)
    }

    /// [`Vm::run`] without consuming the VM, so post-run state (e.g.
    /// [`Vm::cow_stats`]) stays readable.
    pub fn run_to_end<H: ExecHook + ?Sized>(&mut self, hook: &mut H) -> RunResult {
        self.run_until(hook, u64::MAX)
            .expect("a run can never pause at the u64::MAX boundary")
    }

    /// Execute until the run ends or the dynamic-instruction counter reaches
    /// `stop_at`, whichever comes first.
    ///
    /// Returns `Some(result)` when the run ended (completed, trapped, or hit
    /// the instruction limit) and `None` when execution paused at the exact
    /// boundary: `stop_at` instructions have executed and the instruction
    /// with `dyn_index == stop_at` has not.  A paused VM can be resumed by
    /// calling `run_until` (or [`Vm::run`]) again, and its state can be
    /// captured with [`Vm::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if called again after the run has ended.
    pub fn run_until<H: ExecHook + ?Sized>(
        &mut self,
        hook: &mut H,
        stop_at: u64,
    ) -> Option<RunResult> {
        assert!(!self.done, "Vm::run_until called after the run ended");
        // Take the stack into a local for the duration of the loop so the
        // active frame can be borrowed mutably alongside `self` without
        // popping/pushing it on every instruction (this is the hottest loop
        // in the codebase).
        let mut stack = std::mem::take(&mut self.stack);
        let outcome = self.step_loop(hook, stop_at, &mut stack);
        self.stack = stack;
        outcome.map(|o| self.finish(o))
    }

    /// The interpreter loop proper: `Some(outcome)` when the run ended,
    /// `None` when paused at the `stop_at` boundary.
    fn step_loop<H: ExecHook + ?Sized>(
        &mut self,
        hook: &mut H,
        stop_at: u64,
        stack: &mut Vec<Frame>,
    ) -> Option<RunOutcome> {
        loop {
            if stack.is_empty() {
                // No entry function (a verified module always has one).
                return Some(RunOutcome::Trapped(Trap::InvalidCall { callee: u64::MAX }));
            }
            if self.dyn_count >= self.limits.max_dynamic_instrs {
                return Some(RunOutcome::InstrLimitExceeded);
            }
            if self.dyn_count >= stop_at {
                return None;
            }

            let step = {
                let depth = stack.len();
                let frame = stack.last_mut().expect("non-empty call stack");
                let instr = match self.code.instrs.get(frame.pc) {
                    // Falling off the end of a block (or a bodiless
                    // function) aborts without counting an instruction,
                    // matching the tree walker.
                    None | Some(CInstr::FellOff) => return Some(RunOutcome::Trapped(Trap::Abort)),
                    Some(instr) => instr,
                };
                let meta = &self.code.meta[frame.pc];
                let ctx = InstrContext {
                    dyn_index: self.dyn_count,
                    func: meta.func as usize,
                    block: meta.block as usize,
                    instr: meta.instr as usize,
                    opcode: meta.opcode,
                    reg_reads: meta.reg_reads as usize,
                    has_dest: meta.has_dest,
                };
                hook.on_instr(&ctx);
                self.dyn_count += 1;

                match self.exec_instr(frame, instr, &ctx, hook, depth) {
                    Ok(step) => step,
                    Err(trap) => return Some(RunOutcome::Trapped(trap)),
                }
            };

            match step {
                Step::Next => {
                    stack.last_mut().unwrap().pc += 1;
                }
                Step::Jump(target) => {
                    let frame = stack.last_mut().unwrap();
                    frame.prev_block = self.code.meta[frame.pc].block;
                    frame.pc = target;
                }
                Step::Call(new_frame) => {
                    stack.push(new_frame);
                }
                Step::Return(value) => {
                    let finished = stack.pop().unwrap();
                    self.mem.stack_pop_to(finished.stack_mark);
                    match stack.last_mut() {
                        None => return Some(RunOutcome::Completed { ret: value }),
                        Some(caller) => {
                            if let (Some(dest), Some(v)) = (finished.ret_dest, value) {
                                let ctx = finished.call_ctx.expect("call frame has call context");
                                let ty =
                                    self.code.funcs[caller.func as usize].reg_tys[dest.index()];
                                Self::write_dest(caller, dest, Value::new(ty, v.bits), &ctx, hook);
                            }
                            caller.pc += 1;
                        }
                    }
                }
            }
        }
    }

    /// Capture the complete interpreter state at the current
    /// dynamic-instruction boundary (typically right after [`Vm::run_until`]
    /// paused).
    ///
    /// # Panics
    ///
    /// Panics if the run has already ended — there is no state left to
    /// capture once the [`RunResult`] has been produced.
    pub fn snapshot(&self) -> VmSnapshot {
        assert!(!self.done, "Vm::snapshot called after the run ended");
        VmSnapshot {
            frames: self.stack.clone(),
            // A trimmed chunk-table clone: O(chunks) pointer bumps, with any
            // high-water chunks above the current heap/stack tops dropped so
            // they are not carried into every restore of this snapshot.
            mem: self.mem.snapshot_image(),
            output: self.output.clone(),
            dyn_count: self.dyn_count,
        }
    }

    /// Restore interpreter state from a snapshot taken on a VM running the
    /// **same compiled module**, replacing this VM's frames, memory, output
    /// and dynamic-instruction counter.  The VM's own [`Limits`] are kept, so
    /// a replay can run under different (e.g. hang-detection) limits than the
    /// capture run.
    ///
    /// With CoW enabled (the default) the memory reset is O(dirty chunks):
    /// only chunks that diverged from the snapshot are re-pointed.  For a
    /// brand-new VM, [`Vm::from_snapshot`] is cheaper still.
    pub fn resume_from(&mut self, snapshot: &VmSnapshot) {
        self.stack.clone_from(&snapshot.frames);
        self.mem.restore_from(&snapshot.mem);
        self.output.clone_from(&snapshot.output);
        self.dyn_count = snapshot.dyn_count;
        self.done = false;
    }

    /// Create a VM already positioned at `snapshot`, forking the snapshot's
    /// memory image directly: with CoW enabled this copies no chunk bytes at
    /// all (every chunk is shared until first write), which is how thousands
    /// of experiments fork from one shared checkpoint with zero up-front
    /// copy.  The snapshot must come from the **same compiled module**.
    pub fn from_snapshot(
        code: &'c CompiledModule,
        limits: Limits,
        snapshot: &VmSnapshot,
    ) -> Vm<'c> {
        Vm {
            code,
            mem: snapshot.mem.fork(),
            limits,
            output: snapshot.output.clone(),
            dyn_count: snapshot.dyn_count,
            stack: snapshot.frames.clone(),
            done: false,
        }
    }

    /// Copy-on-write cost counters accumulated by this VM's memory.
    pub fn cow_stats(&self) -> crate::memory::CowStats {
        self.mem.cow_stats()
    }

    fn finish(&mut self, outcome: RunOutcome) -> RunResult {
        self.done = true;
        RunResult {
            outcome,
            dynamic_instrs: self.dyn_count,
            output: std::mem::take(&mut self.output),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_instr<H: ExecHook + ?Sized>(
        &mut self,
        frame: &mut Frame,
        instr: &CInstr,
        ctx: &InstrContext,
        hook: &mut H,
        depth: usize,
    ) -> Result<Step, Trap> {
        let mut reads = 0usize;
        macro_rules! rd {
            ($op:expr) => {
                self.read_operand(frame, $op, ctx, &mut reads, hook)?
            };
        }

        match instr {
            CInstr::Binary {
                dest,
                op,
                ty,
                lhs,
                rhs,
            } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                let result = ops::eval_binary(*op, *ty, a, b)?;
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            CInstr::Icmp {
                dest,
                pred,
                ty,
                lhs,
                rhs,
            } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                let result = Value::bool(ops::eval_icmp(*pred, *ty, a, b));
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            CInstr::Fcmp {
                dest,
                pred,
                lhs,
                rhs,
            } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                let result = Value::bool(ops::eval_fcmp(*pred, a.as_f64(), b.as_f64()));
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            CInstr::Cast {
                dest,
                op,
                from_ty,
                to_ty,
                src,
            } => {
                let v = rd!(src);
                let result = ops::eval_cast(*op, *from_ty, *to_ty, v);
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            CInstr::Select {
                dest,
                ty,
                cond,
                then_val,
                else_val,
            } => {
                let c = rd!(cond);
                let t = rd!(then_val);
                let e = rd!(else_val);
                let result = if c.as_bool() { t } else { e };
                Self::write_dest(frame, *dest, Value::new(*ty, result.bits), ctx, hook);
                Ok(Step::Next)
            }
            CInstr::Alloca {
                dest,
                elem_ty,
                count,
            } => {
                let n = rd!(count);
                let size = elem_ty.byte_size().saturating_mul(n.as_u64());
                let addr = self.mem.stack_push(size.max(1))?;
                Self::write_dest(frame, *dest, Value::ptr(addr), ctx, hook);
                Ok(Step::Next)
            }
            CInstr::Load { dest, ty, addr } => {
                let a = rd!(addr);
                let bits = self.mem.load(*ty, a.as_u64())?;
                Self::write_dest(frame, *dest, Value::new(*ty, bits), ctx, hook);
                Ok(Step::Next)
            }
            CInstr::Store { ty, value, addr } => {
                let v = rd!(value);
                let a = rd!(addr);
                self.mem.store(*ty, a.as_u64(), v.bits)?;
                Ok(Step::Next)
            }
            CInstr::Gep {
                dest,
                base,
                index,
                elem_size,
                offset,
            } => {
                let b = rd!(base);
                let i = rd!(index);
                let addr = (b.as_u64())
                    .wrapping_add((i.as_i64() as u64).wrapping_mul(*elem_size))
                    .wrapping_add(*offset as u64);
                Self::write_dest(frame, *dest, Value::ptr(addr), ctx, hook);
                Ok(Step::Next)
            }
            CInstr::Call { dest, callee, args } => {
                if *callee >= self.code.funcs.len() {
                    return Err(Trap::InvalidCall {
                        callee: *callee as u64,
                    });
                }
                if depth >= self.limits.max_call_depth {
                    return Err(Trap::StackOverflow);
                }
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args.iter() {
                    arg_values.push(rd!(a));
                }
                let mut new_frame = self.make_frame(*callee, &arg_values);
                new_frame.ret_dest = *dest;
                new_frame.call_ctx = Some(*ctx);
                Ok(Step::Call(new_frame))
            }
            CInstr::IntrinsicCall { dest, which, args } => {
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args.iter() {
                    arg_values.push(rd!(a));
                }
                let result = ops::exec_intrinsic(
                    &mut self.mem,
                    &mut self.output,
                    &self.limits,
                    *which,
                    &arg_values,
                )?;
                if let (Some(d), Some(v)) = (dest, result) {
                    Self::write_dest(frame, *d, v, ctx, hook);
                }
                Ok(Step::Next)
            }
            CInstr::Phi { dest, ty, incoming } => {
                let arm = incoming
                    .iter()
                    .find(|(b, _)| *b == frame.prev_block)
                    .or_else(|| incoming.first());
                match arm {
                    Some((_, op)) => {
                        let v = rd!(op);
                        Self::write_dest(frame, *dest, Value::new(*ty, v.bits), ctx, hook);
                        Ok(Step::Next)
                    }
                    None => Err(Trap::Abort),
                }
            }
            CInstr::Jump { target } => Ok(Step::Jump(*target)),
            CInstr::CondBr {
                cond,
                then_pc,
                else_pc,
            } => {
                let c = rd!(cond);
                let target = if c.as_bool() { *then_pc } else { *else_pc };
                Ok(Step::Jump(target))
            }
            CInstr::Switch {
                value,
                default_pc,
                cases,
            } => {
                let v = rd!(value);
                let target = cases
                    .iter()
                    .find(|(case, _)| *case == v.as_u64())
                    .map(|(_, pc)| *pc)
                    .unwrap_or(*default_pc);
                Ok(Step::Jump(target))
            }
            CInstr::Ret { value } => {
                let v = match value {
                    Some(op) => Some(rd!(op)),
                    None => None,
                };
                Ok(Step::Return(v))
            }
            CInstr::Unreachable => Err(Trap::Abort),
            // Handled before dispatch; unreachable here.
            CInstr::FellOff => Err(Trap::Abort),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoopHook;
    use mbfi_ir::{CastOp, IcmpPred, Intrinsic, ModuleBuilder, Type};

    fn run(module: &Module) -> RunResult {
        Vm::run_golden(module, Limits::default())
    }

    #[test]
    fn arithmetic_and_output() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], Some(Type::I32));
        {
            let mut f = mb.define(main);
            let a = f.add(Type::I32, 20i32, 22i32);
            f.print_i64(a);
            f.ret(a);
        }
        mb.set_entry(main);
        let m = mb.finish();
        let r = run(&m);
        assert_eq!(r.output, b"42\n");
        assert!(matches!(r.outcome, RunOutcome::Completed { ret: Some(v) } if v.as_i64() == 42));
    }

    #[test]
    fn loop_sums_correctly() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 100i64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, i);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"4950\n");
    }

    #[test]
    fn function_calls_pass_arguments_and_return_values() {
        let mut mb = ModuleBuilder::new("t");
        let square = mb.declare("square", &[(Type::I64, "x")], Some(Type::I64));
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(square);
            let x = f.param(0);
            let r = f.mul(Type::I64, x, x);
            f.ret(r);
        }
        {
            let mut f = mb.define(main);
            let v = f
                .call(square, &[Operand::Const(Constant::i64(9))], Some(Type::I64))
                .unwrap();
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"81\n");
    }

    #[test]
    fn recursion_works_and_deep_recursion_overflows() {
        let mut mb = ModuleBuilder::new("t");
        let fib = mb.declare("fib", &[(Type::I64, "n")], Some(Type::I64));
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(fib);
            let n = f.param(0);
            let is_base = f.icmp(IcmpPred::Slt, Type::I64, n, 2i64);
            let base_bb = f.new_block("base");
            let rec_bb = f.new_block("rec");
            f.cond_br(is_base, base_bb, rec_bb);
            f.switch_to(base_bb);
            f.ret(n);
            f.switch_to(rec_bb);
            let n1 = f.sub(Type::I64, n, 1i64);
            let n2 = f.sub(Type::I64, n, 2i64);
            let a = f.call(fib, &[Operand::Reg(n1)], Some(Type::I64)).unwrap();
            let b = f.call(fib, &[Operand::Reg(n2)], Some(Type::I64)).unwrap();
            let s = f.add(Type::I64, a, b);
            f.ret(s);
        }
        {
            let mut f = mb.define(main);
            let v = f
                .call(fib, &[Operand::Const(Constant::i64(12))], Some(Type::I64))
                .unwrap();
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"144\n");
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let zero_slot = f.slot(Type::I32);
            f.store(Type::I32, 0i32, zero_slot);
            let z = f.load(Type::I32, zero_slot);
            let d = f.sdiv(Type::I32, 10i32, z);
            f.print_i64(d);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.outcome, RunOutcome::Trapped(Trap::DivideByZero));
    }

    #[test]
    fn wild_pointer_load_segfaults() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let p = f.cast(CastOp::IntToPtr, Type::I64, Type::Ptr, 0x10i64);
            let v = f.load(Type::I64, p);
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert!(matches!(
            r.outcome,
            RunOutcome::Trapped(Trap::Segfault { .. })
        ));
    }

    #[test]
    fn infinite_loop_hits_instruction_limit() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let spin = f.new_block("spin");
            f.br(spin);
            f.switch_to(spin);
            f.br(spin);
        }
        mb.set_entry(main);
        let m = mb.finish();
        let code = CompiledModule::lower(&m);
        let mut hook = NoopHook;
        let r = Vm::new(
            &code,
            Limits {
                max_dynamic_instrs: 1_000,
                ..Limits::default()
            },
        )
        .run(&mut hook);
        assert_eq!(r.outcome, RunOutcome::InstrLimitExceeded);
        assert_eq!(r.dynamic_instrs, 1_000);
    }

    #[test]
    fn global_data_and_memory_ops() {
        let mut mb = ModuleBuilder::new("t");
        let table = mb.global_i64s("table", &[10, 20, 30, 40]);
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 4i64, |f, i| {
                let v = f.load_elem(Type::I64, table, i);
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, v);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"100\n");
    }

    #[test]
    fn malloc_memset_memcpy_intrinsics() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let a = f.malloc(32i64);
            let b = f.malloc(32i64);
            f.intrinsic(
                Intrinsic::Memset,
                &[
                    Operand::Reg(a),
                    Operand::Const(Constant::i64(7)),
                    Operand::Const(Constant::i64(8)),
                ],
                None,
            );
            f.intrinsic(
                Intrinsic::Memcpy,
                &[
                    Operand::Reg(b),
                    Operand::Reg(a),
                    Operand::Const(Constant::i64(8)),
                ],
                None,
            );
            let v = f.load(Type::I8, b);
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"7\n");
    }

    #[test]
    fn float_math_and_printing() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let x = f.sqrt(2.25f64);
            let y = f.fmul(x, 2.0f64);
            f.print_f64(y);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"3.000000\n");
    }

    #[test]
    fn abort_intrinsic_traps() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            f.intrinsic(Intrinsic::Abort, &[], None);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.outcome, RunOutcome::Trapped(Trap::Abort));
    }

    #[test]
    fn switch_selects_matching_case() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let slot = f.slot(Type::I32);
            f.store(Type::I32, 2i32, slot);
            let v = f.load(Type::I32, slot);
            let c1 = f.new_block("one");
            let c2 = f.new_block("two");
            let def = f.new_block("def");
            let out = f.new_block("out");
            f.switch(v, def, &[(1, c1), (2, c2)]);
            f.switch_to(c1);
            f.print_i64(100i64);
            f.br(out);
            f.switch_to(c2);
            f.print_i64(200i64);
            f.br(out);
            f.switch_to(def);
            f.print_i64(300i64);
            f.br(out);
            f.switch_to(out);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"200\n");
    }

    #[test]
    fn select_and_comparisons() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let slot = f.slot(Type::I64);
            f.store(Type::I64, -5i64, slot);
            let x = f.load(Type::I64, slot);
            let neg = f.icmp(IcmpPred::Slt, Type::I64, x, 0i64);
            let negated = f.sub(Type::I64, 0i64, x);
            let abs = f.select(Type::I64, neg, negated, x);
            f.print_i64(abs);
            f.ret_void();
        }
        mb.set_entry(main);
        let r = run(&mb.finish());
        assert_eq!(r.output, b"5\n");
    }

    #[test]
    fn dyn_hook_adapter_still_works() {
        // The generic entry points accept unsized hooks, so callers that only
        // have a `&mut dyn ExecHook` keep working.
        let mut mb = ModuleBuilder::new("dyn");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let a = f.add(Type::I64, 1i64, 2i64);
            f.print_i64(a);
            f.ret_void();
        }
        mb.set_entry(main);
        let m = mb.finish();
        let code = CompiledModule::lower(&m);
        let mut counting = crate::profile::CountingHook::new();
        let hook: &mut dyn ExecHook = &mut counting;
        let r = Vm::new(&code, Limits::default()).run(hook);
        assert_eq!(r.output, b"3\n");
        assert_eq!(counting.profile().dynamic_instrs, r.dynamic_instrs);
    }
}
