//! Execution hooks: the fault-injection surface.
//!
//! Every dynamic instruction is announced through [`ExecHook::on_instr`];
//! every *register* operand read is routed through [`ExecHook::on_read`] and
//! every destination-register write through [`ExecHook::on_write`].  The two
//! injection techniques of the paper map directly onto these callbacks:
//!
//! * **inject-on-read** corrupts the value returned from `on_read`,
//! * **inject-on-write** corrupts the value returned from `on_write`.
//!
//! Constants are never routed through `on_read` (they are not injection
//! candidates in LLFI either), and instructions without a destination
//! register (e.g. `store`, branches) never reach `on_write` — which is why
//! Table II of the paper lists fewer inject-on-write candidates.

use crate::value::Value;
use mbfi_ir::{Opcode, Reg};

/// Static and dynamic context of the instruction currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrContext {
    /// Zero-based index of this dynamic instruction in the execution.
    pub dyn_index: u64,
    /// Index of the executing function in the module's function table.
    pub func: usize,
    /// Block index within the function.
    pub block: usize,
    /// Instruction index within the block.
    pub instr: usize,
    /// Coarse opcode of the instruction.
    pub opcode: Opcode,
    /// How many *register* operands the instruction reads.
    pub reg_reads: usize,
    /// Whether the instruction writes a destination register.
    pub has_dest: bool,
}

/// Observer / mutator of the instruction stream.
///
/// Default implementations observe without modifying, so hooks only override
/// the callbacks they care about.
pub trait ExecHook {
    /// Called once per dynamic instruction, before its operands are read.
    fn on_instr(&mut self, _ctx: &InstrContext) {}

    /// Called for every register operand read; the returned value is what the
    /// instruction actually consumes.
    fn on_read(
        &mut self,
        _ctx: &InstrContext,
        _operand_index: usize,
        _reg: Reg,
        value: Value,
    ) -> Value {
        value
    }

    /// Called for every destination-register write; the returned value is
    /// what is actually stored in the register.
    fn on_write(&mut self, _ctx: &InstrContext, _reg: Reg, value: Value) -> Value {
        value
    }
}

/// A hook that observes nothing and changes nothing (used for golden runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHook;

impl ExecHook for NoopHook {}

#[cfg(test)]
mod tests {
    use super::*;
    use mbfi_ir::Type;

    struct Recorder {
        instrs: u64,
        reads: u64,
        writes: u64,
    }

    impl ExecHook for Recorder {
        fn on_instr(&mut self, _ctx: &InstrContext) {
            self.instrs += 1;
        }
        fn on_read(&mut self, _c: &InstrContext, _i: usize, _r: Reg, v: Value) -> Value {
            self.reads += 1;
            v
        }
        fn on_write(&mut self, _c: &InstrContext, _r: Reg, v: Value) -> Value {
            self.writes += 1;
            v
        }
    }

    #[test]
    fn default_hook_methods_pass_values_through() {
        let ctx = InstrContext {
            dyn_index: 0,
            func: 0,
            block: 0,
            instr: 0,
            opcode: Opcode::Binary,
            reg_reads: 2,
            has_dest: true,
        };
        let mut noop = NoopHook;
        let v = Value::i32(42);
        assert_eq!(noop.on_read(&ctx, 0, Reg(0), v), v);
        assert_eq!(noop.on_write(&ctx, Reg(0), v), v);
        noop.on_instr(&ctx);

        let mut rec = Recorder {
            instrs: 0,
            reads: 0,
            writes: 0,
        };
        rec.on_instr(&ctx);
        rec.on_read(&ctx, 0, Reg(0), Value::zero(Type::I32));
        rec.on_write(&ctx, Reg(0), Value::zero(Type::I32));
        assert_eq!((rec.instrs, rec.reads, rec.writes), (1, 1, 1));
    }
}
