//! The legacy tree-walking interpreter.
//!
//! [`WalkerVm`] executes a [`Module`] in its tree shape, fetching every
//! dynamic instruction through the `functions[f].blocks[b].instrs[i]` triple,
//! recomputing per-instruction facts (register-read counts, destination
//! presence) on the fly, and dispatching every hook callback virtually
//! through `&mut dyn ExecHook`.
//!
//! The production execution path is the compiled-bytecode [`crate::Vm`];
//! this walker is retained as
//!
//! * the **behavioural reference** the pipeline-equivalence suite compares
//!   the compiled path against (identical outputs, outcomes and injection
//!   records for every workload and seed), and
//! * the **baseline** the `exec_bench` binary measures the compiled path's
//!   speedup over.
//!
//! It shares all instruction semantics with the compiled interpreter through
//! [`crate::ops`], so the two paths can only differ in *how* they fetch and
//! dispatch, never in *what* an instruction computes.

use crate::hooks::{ExecHook, InstrContext};
use crate::interp::{RunOutcome, RunResult};
use crate::limits::Limits;
use crate::memory::{Memory, MemoryLayout};
use crate::ops;
use crate::trap::Trap;
use crate::value::Value;
use mbfi_ir::{Constant, Instr, Module, Operand, Reg};

/// One activation record of the tree walker.
#[derive(Debug, Clone)]
struct Frame {
    func: usize,
    block: usize,
    instr: usize,
    prev_block: usize,
    regs: Vec<Value>,
    stack_mark: u64,
    /// Where the caller wants this frame's return value.
    ret_dest: Option<Reg>,
    /// Context of the `call` instruction, for routing the return-value write
    /// through the hook.
    call_ctx: Option<InstrContext>,
}

/// The legacy virtual machine executing one program run off the IR tree.
pub struct WalkerVm<'m> {
    module: &'m Module,
    mem: Memory,
    limits: Limits,
    output: Vec<u8>,
    dyn_count: u64,
    /// The call stack, innermost frame last.
    stack: Vec<Frame>,
}

enum Step {
    Next,
    Jump(usize),
    Call(Frame),
    Return(Option<Value>),
}

impl<'m> WalkerVm<'m> {
    /// Create a walker for `module` with the default memory layout.
    pub fn new(module: &'m Module, limits: Limits) -> WalkerVm<'m> {
        WalkerVm::with_layout(module, limits, MemoryLayout::default())
    }

    /// Create a walker with an explicit memory layout.
    pub fn with_layout(module: &'m Module, limits: Limits, layout: MemoryLayout) -> WalkerVm<'m> {
        let mut vm = WalkerVm {
            module,
            mem: Memory::for_module(module, layout),
            limits,
            output: Vec::new(),
            dyn_count: 0,
            stack: Vec::new(),
        };
        if let Some(entry) = module.entry {
            let frame = vm.make_frame(entry.index(), &[]);
            vm.stack.push(frame);
        }
        vm
    }

    /// Convenience: run the module's entry function with a no-op hook.
    pub fn run_golden(module: &'m Module, limits: Limits) -> RunResult {
        let mut hook = crate::hooks::NoopHook;
        WalkerVm::new(module, limits).run(&mut hook)
    }

    fn make_frame(&self, func_idx: usize, args: &[Value]) -> Frame {
        let func = &self.module.functions[func_idx];
        let mut regs: Vec<Value> = func.regs.iter().map(|r| Value::zero(r.ty)).collect();
        for (param, arg) in func.params.iter().zip(args) {
            regs[param.index()] = Value::new(func.regs[param.index()].ty, arg.bits);
        }
        Frame {
            func: func_idx,
            block: 0,
            instr: 0,
            prev_block: 0,
            regs,
            stack_mark: self.mem.stack_mark(),
            ret_dest: None,
            call_ctx: None,
        }
    }

    fn resolve_const(&self, c: &Constant) -> Result<Value, Trap> {
        match c {
            Constant::Global { index } => match self.mem.global_addr(*index) {
                Some(addr) => Ok(Value::ptr(addr)),
                None => Err(Trap::Segfault { addr: 0 }),
            },
            other => Ok(Value::from_constant(other)),
        }
    }

    fn read_operand(
        &self,
        frame: &Frame,
        op: &Operand,
        ctx: &InstrContext,
        reg_read_idx: &mut usize,
        hook: &mut dyn ExecHook,
    ) -> Result<Value, Trap> {
        match op {
            Operand::Reg(r) => {
                let value = frame.regs[r.index()];
                let idx = *reg_read_idx;
                *reg_read_idx += 1;
                Ok(hook.on_read(ctx, idx, *r, value))
            }
            Operand::Const(c) => self.resolve_const(c),
        }
    }

    fn write_dest(
        frame: &mut Frame,
        reg: Reg,
        value: Value,
        ctx: &InstrContext,
        hook: &mut dyn ExecHook,
    ) {
        let value = hook.on_write(ctx, reg, value);
        frame.regs[reg.index()] = value;
    }

    /// Execute the module's entry function, routing register traffic through
    /// `hook`.
    pub fn run(mut self, hook: &mut dyn ExecHook) -> RunResult {
        let mut stack = std::mem::take(&mut self.stack);
        let outcome = self.step_loop(hook, &mut stack);
        RunResult {
            outcome,
            dynamic_instrs: self.dyn_count,
            output: std::mem::take(&mut self.output),
        }
    }

    fn step_loop(&mut self, hook: &mut dyn ExecHook, stack: &mut Vec<Frame>) -> RunOutcome {
        loop {
            if stack.is_empty() {
                // No entry function (a verified module always has one).
                return RunOutcome::Trapped(Trap::InvalidCall { callee: u64::MAX });
            }
            if self.dyn_count >= self.limits.max_dynamic_instrs {
                return RunOutcome::InstrLimitExceeded;
            }

            let step = {
                let depth = stack.len();
                let frame = stack.last_mut().expect("non-empty call stack");
                let func = &self.module.functions[frame.func];
                let block = &func.blocks[frame.block];
                if frame.instr >= block.instrs.len() {
                    // A verified module never falls off the end of a block.
                    return RunOutcome::Trapped(Trap::Abort);
                }
                let instr = &block.instrs[frame.instr];
                let ctx = InstrContext {
                    dyn_index: self.dyn_count,
                    func: frame.func,
                    block: frame.block,
                    instr: frame.instr,
                    opcode: instr.opcode(),
                    reg_reads: instr.operands().iter().filter(|o| o.is_reg()).count(),
                    has_dest: instr.dest().is_some(),
                };
                hook.on_instr(&ctx);
                self.dyn_count += 1;

                match self.exec_instr(frame, instr, &ctx, hook, depth) {
                    Ok(step) => step,
                    Err(trap) => return RunOutcome::Trapped(trap),
                }
            };

            match step {
                Step::Next => {
                    stack.last_mut().unwrap().instr += 1;
                }
                Step::Jump(target) => {
                    let frame = stack.last_mut().unwrap();
                    frame.prev_block = frame.block;
                    frame.block = target;
                    frame.instr = 0;
                }
                Step::Call(new_frame) => {
                    stack.push(new_frame);
                }
                Step::Return(value) => {
                    let finished = stack.pop().unwrap();
                    self.mem.stack_pop_to(finished.stack_mark);
                    match stack.last_mut() {
                        None => return RunOutcome::Completed { ret: value },
                        Some(caller) => {
                            if let (Some(dest), Some(v)) = (finished.ret_dest, value) {
                                let ctx = finished.call_ctx.expect("call frame has call context");
                                let ty = self.module.functions[caller.func].regs[dest.index()].ty;
                                Self::write_dest(caller, dest, Value::new(ty, v.bits), &ctx, hook);
                            }
                            caller.instr += 1;
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_instr(
        &mut self,
        frame: &mut Frame,
        instr: &Instr,
        ctx: &InstrContext,
        hook: &mut dyn ExecHook,
        depth: usize,
    ) -> Result<Step, Trap> {
        let mut reads = 0usize;
        macro_rules! rd {
            ($op:expr) => {
                self.read_operand(frame, $op, ctx, &mut reads, hook)?
            };
        }

        match instr {
            Instr::Binary {
                dest,
                op,
                ty,
                lhs,
                rhs,
            } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                let result = ops::eval_binary(*op, *ty, a, b)?;
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            Instr::Icmp {
                dest,
                pred,
                ty,
                lhs,
                rhs,
            } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                let result = Value::bool(ops::eval_icmp(*pred, *ty, a, b));
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            Instr::Fcmp {
                dest,
                pred,
                lhs,
                rhs,
                ..
            } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                let result = Value::bool(ops::eval_fcmp(*pred, a.as_f64(), b.as_f64()));
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            Instr::Cast {
                dest,
                op,
                from_ty,
                to_ty,
                src,
            } => {
                let v = rd!(src);
                let result = ops::eval_cast(*op, *from_ty, *to_ty, v);
                Self::write_dest(frame, *dest, result, ctx, hook);
                Ok(Step::Next)
            }
            Instr::Select {
                dest,
                ty,
                cond,
                then_val,
                else_val,
            } => {
                let c = rd!(cond);
                let t = rd!(then_val);
                let e = rd!(else_val);
                let result = if c.as_bool() { t } else { e };
                Self::write_dest(frame, *dest, Value::new(*ty, result.bits), ctx, hook);
                Ok(Step::Next)
            }
            Instr::Alloca {
                dest,
                elem_ty,
                count,
            } => {
                let n = rd!(count);
                let size = elem_ty.byte_size().saturating_mul(n.as_u64());
                let addr = self.mem.stack_push(size.max(1))?;
                Self::write_dest(frame, *dest, Value::ptr(addr), ctx, hook);
                Ok(Step::Next)
            }
            Instr::Load { dest, ty, addr } => {
                let a = rd!(addr);
                let bits = self.mem.load(*ty, a.as_u64())?;
                Self::write_dest(frame, *dest, Value::new(*ty, bits), ctx, hook);
                Ok(Step::Next)
            }
            Instr::Store { ty, value, addr } => {
                let v = rd!(value);
                let a = rd!(addr);
                self.mem.store(*ty, a.as_u64(), v.bits)?;
                Ok(Step::Next)
            }
            Instr::Gep {
                dest,
                base,
                index,
                elem_size,
                offset,
            } => {
                let b = rd!(base);
                let i = rd!(index);
                let addr = (b.as_u64())
                    .wrapping_add((i.as_i64() as u64).wrapping_mul(*elem_size))
                    .wrapping_add(*offset as u64);
                Self::write_dest(frame, *dest, Value::ptr(addr), ctx, hook);
                Ok(Step::Next)
            }
            Instr::Call { dest, callee, args } => {
                if *callee >= self.module.functions.len() {
                    return Err(Trap::InvalidCall {
                        callee: *callee as u64,
                    });
                }
                if depth >= self.limits.max_call_depth {
                    return Err(Trap::StackOverflow);
                }
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(rd!(a));
                }
                let mut new_frame = self.make_frame(*callee, &arg_values);
                new_frame.ret_dest = *dest;
                new_frame.call_ctx = Some(*ctx);
                Ok(Step::Call(new_frame))
            }
            Instr::IntrinsicCall { dest, which, args } => {
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(rd!(a));
                }
                let result = ops::exec_intrinsic(
                    &mut self.mem,
                    &mut self.output,
                    &self.limits,
                    *which,
                    &arg_values,
                )?;
                if let (Some(d), Some(v)) = (dest, result) {
                    Self::write_dest(frame, *d, v, ctx, hook);
                }
                Ok(Step::Next)
            }
            Instr::Phi { dest, ty, incoming } => {
                let arm = incoming
                    .iter()
                    .find(|(b, _)| b.index() == frame.prev_block)
                    .or_else(|| incoming.first());
                match arm {
                    Some((_, op)) => {
                        let v = rd!(op);
                        Self::write_dest(frame, *dest, Value::new(*ty, v.bits), ctx, hook);
                        Ok(Step::Next)
                    }
                    None => Err(Trap::Abort),
                }
            }
            Instr::Br { target } => Ok(Step::Jump(target.index())),
            Instr::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = rd!(cond);
                let target = if c.as_bool() { then_bb } else { else_bb };
                Ok(Step::Jump(target.index()))
            }
            Instr::Switch {
                value,
                default,
                cases,
            } => {
                let v = rd!(value);
                let target = cases
                    .iter()
                    .find(|(case, _)| *case == v.as_u64())
                    .map(|(_, b)| *b)
                    .unwrap_or(*default);
                Ok(Step::Jump(target.index()))
            }
            Instr::Ret { value } => {
                let v = match value {
                    Some(op) => Some(rd!(op)),
                    None => None,
                };
                Ok(Step::Return(v))
            }
            Instr::Unreachable => Err(Trap::Abort),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Vm;
    use crate::profile::CountingHook;
    use mbfi_ir::{IcmpPred, ModuleBuilder, Type};

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("walker");
        let helper = mb.declare("helper", &[(Type::I64, "x")], Some(Type::I64));
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(helper);
            let x = f.param(0);
            let doubled = f.add(Type::I64, x, x);
            f.ret(doubled);
        }
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 25i64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let odd = f.urem(Type::I64, i, 2i64);
                let is_odd = f.icmp(IcmpPred::Ne, Type::I64, odd, 0i64);
                let bump = f.select(Type::I64, is_odd, i, 0i64);
                let next = f.add(Type::I64, cur, bump);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            let v = f
                .call(helper, &[Operand::Reg(total)], Some(Type::I64))
                .unwrap();
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn walker_and_compiled_paths_agree_exactly() {
        let m = sample_module();
        let walked = WalkerVm::run_golden(&m, Limits::default());
        let compiled = Vm::run_golden(&m, Limits::default());
        assert_eq!(walked, compiled);
        assert_eq!(walked.output, b"288\n");
    }

    #[test]
    fn walker_and_compiled_report_identical_hook_contexts() {
        let m = sample_module();
        let code = mbfi_ir::CompiledModule::lower(&m);

        #[derive(Default)]
        struct Trace(Vec<(u64, usize, usize, usize, usize, bool)>);
        impl ExecHook for Trace {
            fn on_instr(&mut self, ctx: &InstrContext) {
                self.0.push((
                    ctx.dyn_index,
                    ctx.func,
                    ctx.block,
                    ctx.instr,
                    ctx.reg_reads,
                    ctx.has_dest,
                ));
            }
        }

        let mut walked = Trace::default();
        let r1 = WalkerVm::new(&m, Limits::default()).run(&mut walked);
        let mut compiled = Trace::default();
        let r2 = Vm::new(&code, Limits::default()).run(&mut compiled);
        assert_eq!(r1, r2);
        assert_eq!(walked.0, compiled.0);
    }

    #[test]
    fn walker_profiles_match_compiled_profiles() {
        let m = sample_module();
        let code = mbfi_ir::CompiledModule::lower(&m);
        let mut a = CountingHook::new();
        let _ = WalkerVm::new(&m, Limits::default()).run(&mut a);
        let mut b = CountingHook::new();
        let _ = Vm::new(&code, Limits::default()).run(&mut b);
        assert_eq!(a.profile(), b.profile());
    }
}
