//! Shared instruction semantics: arithmetic, comparisons, casts and
//! intrinsics.
//!
//! Both interpreters — the compiled-bytecode [`crate::Vm`] and the legacy
//! tree walker [`crate::WalkerVm`] — evaluate instructions through these
//! helpers, so the two execution paths cannot drift semantically.

use crate::limits::Limits;
use crate::memory::Memory;
use crate::trap::Trap;
use crate::value::Value;
use mbfi_ir::{BinOp, CastOp, FcmpPred, IcmpPred, Intrinsic, Type};

/// Evaluate an integer or floating binary operation.
pub fn eval_binary(op: BinOp, ty: Type, a: Value, b: Value) -> Result<Value, Trap> {
    if op.is_float() {
        let (x, y) = (a.as_f64(), b.as_f64());
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            BinOp::FRem => x % y,
            _ => unreachable!(),
        };
        return Ok(Value::from_f64(ty, r));
    }

    let width = ty.bit_width();
    let ua = a.bits & ty.bit_mask();
    let ub = b.bits & ty.bit_mask();
    let sa = a.as_i64();
    let sb = b.as_i64();
    let bits = match op {
        BinOp::Add => ua.wrapping_add(ub),
        BinOp::Sub => ua.wrapping_sub(ub),
        BinOp::Mul => ua.wrapping_mul(ub),
        BinOp::UDiv => {
            if ub == 0 {
                return Err(Trap::DivideByZero);
            }
            ua / ub
        }
        BinOp::SDiv => {
            if sb == 0 {
                return Err(Trap::DivideByZero);
            }
            if sa == i64::MIN && sb == -1 {
                return Err(Trap::DivideByZero);
            }
            (sa / sb) as u64
        }
        BinOp::URem => {
            if ub == 0 {
                return Err(Trap::DivideByZero);
            }
            ua % ub
        }
        BinOp::SRem => {
            if sb == 0 {
                return Err(Trap::DivideByZero);
            }
            if sa == i64::MIN && sb == -1 {
                return Err(Trap::DivideByZero);
            }
            (sa % sb) as u64
        }
        BinOp::Shl => ua.wrapping_shl(ub as u32 % width),
        BinOp::LShr => ua.wrapping_shr(ub as u32 % width),
        BinOp::AShr => {
            let shift = ub as u32 % width;
            (sign_extend_to_i64(ua, width) >> shift) as u64
        }
        BinOp::And => ua & ub,
        BinOp::Or => ua | ub,
        BinOp::Xor => ua ^ ub,
        _ => unreachable!("float ops handled above"),
    };
    Ok(Value::new(ty, bits))
}

fn sign_extend_to_i64(bits: u64, width: u32) -> i64 {
    mbfi_ir::value::sign_extend(bits, width)
}

/// Evaluate an integer comparison.
pub fn eval_icmp(pred: IcmpPred, ty: Type, a: Value, b: Value) -> bool {
    let ua = a.bits & ty.bit_mask();
    let ub = b.bits & ty.bit_mask();
    let sa = sign_extend_to_i64(ua, ty.bit_width());
    let sb = sign_extend_to_i64(ub, ty.bit_width());
    match pred {
        IcmpPred::Eq => ua == ub,
        IcmpPred::Ne => ua != ub,
        IcmpPred::Ugt => ua > ub,
        IcmpPred::Uge => ua >= ub,
        IcmpPred::Ult => ua < ub,
        IcmpPred::Ule => ua <= ub,
        IcmpPred::Sgt => sa > sb,
        IcmpPred::Sge => sa >= sb,
        IcmpPred::Slt => sa < sb,
        IcmpPred::Sle => sa <= sb,
    }
}

/// Evaluate a floating-point comparison.
pub fn eval_fcmp(pred: FcmpPred, x: f64, y: f64) -> bool {
    let unordered = x.is_nan() || y.is_nan();
    match pred {
        FcmpPred::Oeq => !unordered && x == y,
        FcmpPred::One => !unordered && x != y,
        FcmpPred::Ogt => !unordered && x > y,
        FcmpPred::Oge => !unordered && x >= y,
        FcmpPred::Olt => !unordered && x < y,
        FcmpPred::Ole => !unordered && x <= y,
        FcmpPred::Ord => !unordered,
        FcmpPred::Uno => unordered,
        FcmpPred::Ueq => unordered || x == y,
        FcmpPred::Une => unordered || x != y,
    }
}

/// Evaluate a cast.
pub fn eval_cast(op: CastOp, from_ty: Type, to_ty: Type, v: Value) -> Value {
    match op {
        CastOp::Trunc | CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr | CastOp::ZExt => {
            Value::new(to_ty, v.bits & from_ty.bit_mask())
        }
        CastOp::SExt => {
            let s = sign_extend_to_i64(v.bits & from_ty.bit_mask(), from_ty.bit_width());
            Value::new(to_ty, s as u64)
        }
        CastOp::FpToSi => {
            let f = if from_ty == Type::F32 {
                f32::from_bits(v.bits as u32) as f64
            } else {
                f64::from_bits(v.bits)
            };
            Value::new(to_ty, f as i64 as u64)
        }
        CastOp::FpToUi => {
            let f = if from_ty == Type::F32 {
                f32::from_bits(v.bits as u32) as f64
            } else {
                f64::from_bits(v.bits)
            };
            Value::new(to_ty, f as u64)
        }
        CastOp::SiToFp => {
            let s = sign_extend_to_i64(v.bits & from_ty.bit_mask(), from_ty.bit_width());
            Value::from_f64(to_ty, s as f64)
        }
        CastOp::UiToFp => Value::from_f64(to_ty, (v.bits & from_ty.bit_mask()) as f64),
        CastOp::FpTrunc => Value::f32(f64::from_bits(v.bits) as f32),
        CastOp::FpExt => Value::f64(f32::from_bits(v.bits as u32) as f64),
    }
}

/// Append print output, honouring the output-size limit.
pub(crate) fn append_output(output: &mut Vec<u8>, limits: &Limits, bytes: &[u8]) {
    let remaining = limits.max_output_bytes.saturating_sub(output.len());
    let take = remaining.min(bytes.len());
    output.extend_from_slice(&bytes[..take]);
}

/// Execute an intrinsic call against the VM's memory and output buffer.
pub(crate) fn exec_intrinsic(
    mem: &mut Memory,
    output: &mut Vec<u8>,
    limits: &Limits,
    which: Intrinsic,
    args: &[Value],
) -> Result<Option<Value>, Trap> {
    let arg = |i: usize| args.get(i).copied().unwrap_or(Value::i64(0));
    match which {
        Intrinsic::PrintI64 => {
            let text = format!("{}\n", arg(0).as_i64());
            append_output(output, limits, text.as_bytes());
            Ok(None)
        }
        Intrinsic::PrintF64 => {
            let v = arg(0).as_f64();
            let text = if v.is_finite() {
                format!("{v:.6}\n")
            } else {
                format!("{v}\n")
            };
            append_output(output, limits, text.as_bytes());
            Ok(None)
        }
        Intrinsic::PrintChar => {
            append_output(output, limits, &[arg(0).as_u64() as u8]);
            Ok(None)
        }
        Intrinsic::PrintBytes => {
            let addr = arg(0).as_u64();
            let len = arg(1).as_u64().min(limits.max_output_bytes as u64);
            let bytes = mem.read_bytes(addr, len)?;
            append_output(output, limits, &bytes);
            Ok(None)
        }
        Intrinsic::Abort => Err(Trap::Abort),
        Intrinsic::Malloc => {
            let addr = mem.heap_alloc(arg(0).as_u64())?;
            Ok(Some(Value::ptr(addr)))
        }
        Intrinsic::Free => {
            mem.heap_free(arg(0).as_u64())?;
            Ok(None)
        }
        Intrinsic::Memcpy => {
            mem.copy(arg(0).as_u64(), arg(1).as_u64(), arg(2).as_u64())?;
            Ok(None)
        }
        Intrinsic::Memset => {
            mem.fill(arg(0).as_u64(), arg(1).as_u64() as u8, arg(2).as_u64())?;
            Ok(None)
        }
        Intrinsic::Sqrt => Ok(Some(Value::f64(arg(0).as_f64().sqrt()))),
        Intrinsic::Sin => Ok(Some(Value::f64(arg(0).as_f64().sin()))),
        Intrinsic::Cos => Ok(Some(Value::f64(arg(0).as_f64().cos()))),
        Intrinsic::Atan => Ok(Some(Value::f64(arg(0).as_f64().atan()))),
        Intrinsic::Pow => Ok(Some(Value::f64(arg(0).as_f64().powf(arg(1).as_f64())))),
        Intrinsic::Exp => Ok(Some(Value::f64(arg(0).as_f64().exp()))),
        Intrinsic::Log => Ok(Some(Value::f64(arg(0).as_f64().ln()))),
        Intrinsic::Fabs => Ok(Some(Value::f64(arg(0).as_f64().abs()))),
        Intrinsic::Floor => Ok(Some(Value::f64(arg(0).as_f64().floor()))),
        Intrinsic::Ceil => Ok(Some(Value::f64(arg(0).as_f64().ceil()))),
        Intrinsic::Cbrt => Ok(Some(Value::f64(arg(0).as_f64().cbrt()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_division_overflow_traps() {
        assert_eq!(
            eval_binary(BinOp::SDiv, Type::I64, Value::i64(i64::MIN), Value::i64(-1)),
            Err(Trap::DivideByZero)
        );
        assert_eq!(
            eval_binary(BinOp::SRem, Type::I64, Value::i64(i64::MIN), Value::i64(-1)),
            Err(Trap::DivideByZero)
        );
    }

    #[test]
    fn cast_semantics() {
        assert_eq!(
            eval_cast(
                CastOp::SExt,
                Type::I8,
                Type::I64,
                Value::new(Type::I8, 0xff)
            )
            .as_i64(),
            -1
        );
        assert_eq!(
            eval_cast(
                CastOp::ZExt,
                Type::I8,
                Type::I64,
                Value::new(Type::I8, 0xff)
            )
            .as_i64(),
            255
        );
        assert_eq!(
            eval_cast(CastOp::FpToSi, Type::F64, Type::I32, Value::f64(-3.7)).as_i64(),
            -3
        );
        assert_eq!(
            eval_cast(CastOp::SiToFp, Type::I32, Type::F64, Value::i32(-2)).as_f64(),
            -2.0
        );
        assert_eq!(
            eval_cast(CastOp::FpExt, Type::F32, Type::F64, Value::f32(1.5)).as_f64(),
            1.5
        );
        assert_eq!(
            eval_cast(CastOp::Trunc, Type::I64, Type::I8, Value::i64(0x1234)).as_u64(),
            0x34
        );
    }

    #[test]
    fn icmp_signed_vs_unsigned() {
        let a = Value::i32(-1);
        let b = Value::i32(1);
        assert!(eval_icmp(IcmpPred::Slt, Type::I32, a, b));
        assert!(!eval_icmp(IcmpPred::Ult, Type::I32, a, b));
        assert!(eval_icmp(IcmpPred::Ugt, Type::I32, a, b));
        assert!(eval_icmp(IcmpPred::Ne, Type::I32, a, b));
    }

    #[test]
    fn fcmp_handles_nan() {
        assert!(!eval_fcmp(FcmpPred::Oeq, f64::NAN, 1.0));
        assert!(eval_fcmp(FcmpPred::Uno, f64::NAN, 1.0));
        assert!(eval_fcmp(FcmpPred::Ord, 1.0, 2.0));
        assert!(eval_fcmp(FcmpPred::Une, f64::NAN, f64::NAN));
        assert!(eval_fcmp(FcmpPred::Ole, 1.0, 1.0));
    }

    #[test]
    fn shifts_wrap_amount_modulo_width() {
        let v = eval_binary(BinOp::Shl, Type::I32, Value::i32(1), Value::i32(33)).unwrap();
        assert_eq!(v.as_u64(), 2);
        let v = eval_binary(BinOp::AShr, Type::I32, Value::i32(-8), Value::i32(2)).unwrap();
        assert_eq!(v.as_i64(), -2);
    }
}
