//! Runtime values and bit-level manipulation.
//!
//! A runtime [`Value`] is a `(Type, u64)` pair: the raw 64-bit payload plus
//! the scalar type that says how many of those bits are live.  Keeping every
//! value — integer, float or pointer — in the same representation is what
//! makes the bit-flip fault model uniform: flipping bit `k` is a single XOR
//! regardless of what the register semantically holds, exactly as in LLFI.

use mbfi_ir::value::sign_extend;
use mbfi_ir::{Constant, Type};
use std::fmt;

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Value {
    /// The scalar type of the value.
    pub ty: Type,
    /// Raw payload; only the low [`Type::bit_width`] bits are meaningful
    /// (floats store their IEEE-754 encoding, pointers their address).
    pub bits: u64,
}

impl Value {
    /// Construct a value, masking the payload to the type's width.
    pub fn new(ty: Type, bits: u64) -> Value {
        Value {
            ty,
            bits: bits & ty.bit_mask(),
        }
    }

    /// The zero value of a type.
    pub fn zero(ty: Type) -> Value {
        Value { ty, bits: 0 }
    }

    /// A boolean (`i1`) value.
    pub fn bool(b: bool) -> Value {
        Value::new(Type::I1, b as u64)
    }

    /// An `i32` value.
    pub fn i32(v: i32) -> Value {
        Value::new(Type::I32, v as u32 as u64)
    }

    /// An `i64` value.
    pub fn i64(v: i64) -> Value {
        Value::new(Type::I64, v as u64)
    }

    /// A pointer value.
    pub fn ptr(addr: u64) -> Value {
        Value::new(Type::Ptr, addr)
    }

    /// An `f64` value.
    pub fn f64(v: f64) -> Value {
        Value::new(Type::F64, v.to_bits())
    }

    /// An `f32` value.
    pub fn f32(v: f32) -> Value {
        Value::new(Type::F32, v.to_bits() as u64)
    }

    /// Build a value of `ty` from an `f64`, encoding appropriately.
    pub fn from_f64(ty: Type, v: f64) -> Value {
        match ty {
            Type::F32 => Value::f32(v as f32),
            Type::F64 => Value::f64(v),
            _ => Value::new(ty, v as i64 as u64),
        }
    }

    /// The value as an unsigned integer (raw bits for floats / pointers).
    pub fn as_u64(&self) -> u64 {
        self.bits
    }

    /// The value interpreted as a signed integer of its width.
    pub fn as_i64(&self) -> i64 {
        sign_extend(self.bits, self.ty.bit_width())
    }

    /// The value interpreted as a float (widening `f32`, converting ints).
    pub fn as_f64(&self) -> f64 {
        match self.ty {
            Type::F32 => f32::from_bits(self.bits as u32) as f64,
            Type::F64 => f64::from_bits(self.bits),
            _ => self.as_i64() as f64,
        }
    }

    /// The value as a boolean (non-zero = true).
    pub fn as_bool(&self) -> bool {
        self.bits != 0
    }

    /// Flip bit `bit` (0 = least significant) of the value.
    ///
    /// Bits at or beyond the type's width are ignored, matching LLFI which
    /// only flips bits inside the value's declared width.
    pub fn flip_bit(&self, bit: u32) -> Value {
        if bit >= self.ty.bit_width() {
            return *self;
        }
        Value {
            ty: self.ty,
            bits: self.bits ^ (1u64 << bit),
        }
    }

    /// Flip several bits at once (used by the same-register multi-bit model).
    ///
    /// The bit positions are folded into one XOR mask first, so the flip is a
    /// single XOR regardless of how many bits are listed.  Semantics match
    /// applying [`Value::flip_bit`] per position: out-of-width positions are
    /// ignored and a position listed twice cancels itself (XOR, not OR).
    pub fn flip_bits(&self, bits: &[u32]) -> Value {
        let width = self.ty.bit_width();
        let mask = bits
            .iter()
            .filter(|&&b| b < width)
            .fold(0u64, |m, &b| m ^ (1u64 << b));
        Value {
            ty: self.ty,
            bits: self.bits ^ mask,
        }
    }

    /// Convert an IR constant into a runtime value.
    ///
    /// `Global` constants must be resolved by the VM (which knows the load
    /// addresses) and are rejected here.
    pub fn from_constant(c: &Constant) -> Value {
        match c {
            Constant::Int { ty, bits } | Constant::Float { ty, bits } => Value::new(*ty, *bits),
            Constant::Null => Value::ptr(0),
            Constant::Global { .. } => {
                panic!("global constants must be resolved by the VM, not Value::from_constant")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Type::F32 | Type::F64 => write!(f, "{}:{}", self.ty, self.as_f64()),
            Type::Ptr => write!(f, "ptr:{:#x}", self.bits),
            _ => write!(f, "{}:{}", self.ty, self.as_i64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic SplitMix64 stream for randomised cases (this crate must
    /// stay below `mbfi-core`, so it cannot use `mbfi_core::rng`).
    fn test_bits(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed;
        let mut out = vec![0, 1, u64::MAX, 1 << 63, 0x5555_5555_5555_5555];
        out.extend((0..n).map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }));
        out
    }

    #[test]
    fn construction_masks_to_width() {
        assert_eq!(Value::new(Type::I8, 0x1ff).bits, 0xff);
        assert_eq!(Value::new(Type::I1, 2).bits, 0);
        assert_eq!(Value::new(Type::I64, u64::MAX).bits, u64::MAX);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(Value::new(Type::I8, 0xff).as_i64(), -1);
        assert_eq!(Value::i32(-5).as_i64(), -5);
        assert_eq!(Value::i64(i64::MIN).as_i64(), i64::MIN);
    }

    #[test]
    fn float_round_trip() {
        assert_eq!(Value::f64(2.75).as_f64(), 2.75);
        assert_eq!(Value::f32(-1.5).as_f64(), -1.5);
        assert_eq!(Value::from_f64(Type::F32, 0.5).as_f64(), 0.5);
        assert_eq!(Value::from_f64(Type::I32, 7.9).as_i64(), 7);
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let v = Value::i32(0);
        let f = v.flip_bit(5);
        assert_eq!(f.bits, 32);
        assert_eq!(f.ty, Type::I32);
    }

    #[test]
    fn flip_bit_out_of_width_is_noop() {
        let v = Value::new(Type::I8, 0x0f);
        assert_eq!(v.flip_bit(8), v);
        assert_eq!(v.flip_bit(63), v);
        let b = Value::bool(true);
        assert_eq!(b.flip_bit(1), b);
        assert_ne!(b.flip_bit(0), b);
    }

    #[test]
    fn flip_bits_applies_all() {
        let v = Value::i64(0);
        let f = v.flip_bits(&[0, 1, 2]);
        assert_eq!(f.as_i64(), 7);
    }

    /// The masked `flip_bits` is equivalent to folding `flip_bit` over the
    /// positions — including duplicate positions (which cancel) and
    /// out-of-width positions (which are ignored).
    #[test]
    fn flip_bits_matches_sequential_flip_bit() {
        for (i, bits) in test_bits(0xB175, 16).into_iter().enumerate() {
            for ty in Type::ALL {
                let v = Value::new(ty, bits);
                // A deterministic positions list with repeats and
                // out-of-width entries.
                let positions: Vec<u32> = (0..12)
                    .map(|k| ((bits >> (5 * k)) as u32).wrapping_add(i as u32) % 80)
                    .collect();
                let sequential = positions.iter().fold(v, |acc, &b| acc.flip_bit(b));
                assert_eq!(v.flip_bits(&positions), sequential, "{ty} {positions:?}");
            }
        }
    }

    #[test]
    fn flip_bits_duplicates_cancel_and_out_of_width_are_ignored() {
        let v = Value::new(Type::I8, 0x5a);
        assert_eq!(v.flip_bits(&[3, 3]), v);
        assert_eq!(v.flip_bits(&[8, 17, 63]), v);
        assert_eq!(v.flip_bits(&[1, 1, 1]), v.flip_bit(1));
    }

    #[test]
    fn from_constant_matches_ir_constants() {
        assert_eq!(Value::from_constant(&Constant::i32(-3)).as_i64(), -3);
        assert_eq!(Value::from_constant(&Constant::f64(1.5)).as_f64(), 1.5);
        assert_eq!(Value::from_constant(&Constant::Null).as_u64(), 0);
        assert!(Value::from_constant(&Constant::bool(true)).as_bool());
    }

    #[test]
    #[should_panic(expected = "resolved by the VM")]
    fn from_constant_rejects_globals() {
        let _ = Value::from_constant(&Constant::global(0));
    }

    /// Flipping the same bit twice restores the original value — exhaustive
    /// over every bit position for a deterministic set of bit patterns.
    #[test]
    fn flip_is_involutive() {
        for bits in test_bits(0xF11B, 32) {
            for bit in 0u32..64 {
                for ty in Type::ALL {
                    let v = Value::new(ty, bits);
                    assert_eq!(v.flip_bit(bit).flip_bit(bit), v, "{ty} bit {bit}");
                }
            }
        }
    }

    /// A flip inside the width changes the value; outside it never does.
    #[test]
    fn flip_changes_iff_in_width() {
        for bits in test_bits(0xC4A6, 32) {
            for bit in 0u32..64 {
                for ty in Type::ALL {
                    let v = Value::new(ty, bits);
                    let flipped = v.flip_bit(bit);
                    if bit < ty.bit_width() {
                        assert_ne!(flipped, v, "{ty} bit {bit}");
                    } else {
                        assert_eq!(flipped, v, "{ty} bit {bit}");
                    }
                }
            }
        }
    }

    /// Values never carry bits outside their type's mask.
    #[test]
    fn values_respect_mask() {
        for bits in test_bits(0x3A5C, 32) {
            for bit in 0u32..64 {
                for ty in Type::ALL {
                    let v = Value::new(ty, bits).flip_bit(bit);
                    assert_eq!(v.bits & !ty.bit_mask(), 0, "{ty} bit {bit}");
                }
            }
        }
    }

    /// Signed interpretation round-trips through i64 for i64 values.
    #[test]
    fn i64_round_trip() {
        for bits in test_bits(0x164, 64) {
            let v = bits as i64;
            assert_eq!(Value::i64(v).as_i64(), v);
        }
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX] {
            assert_eq!(Value::i64(v).as_i64(), v);
        }
    }

    /// f64 values round-trip bit-exactly (including NaN payloads).
    #[test]
    fn f64_round_trip() {
        let mut cases: Vec<f64> = vec![
            0.0,
            -0.0,
            1.5,
            -2.75,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
            f64::MAX,
        ];
        cases.extend(test_bits(0xF64, 64).into_iter().map(f64::from_bits));
        for v in cases {
            let round = Value::f64(v).as_f64();
            if v.is_nan() {
                assert!(round.is_nan());
            } else {
                assert_eq!(round, v);
            }
        }
    }
}
