//! Fault-free profiling of a workload.
//!
//! A campaign first runs the program once with a [`CountingHook`] to learn
//!
//! * the total number of dynamic instructions (used to derive the hang
//!   threshold),
//! * the number of **inject-on-read candidates** — dynamic instructions
//!   reading at least one register operand, and
//! * the number of **inject-on-write candidates** — dynamic instructions
//!   producing a destination register.
//!
//! These are the per-workload "total number of candidate instructions for
//! fault injection" columns of Table II in the paper.  Injection targets are
//! then drawn uniformly from the candidate ordinals.

use crate::hooks::{ExecHook, InstrContext};
use mbfi_ir::Opcode;
use std::collections::BTreeMap;

/// Summary of a fault-free run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutionProfile {
    /// Total dynamic instructions executed.
    pub dynamic_instrs: u64,
    /// Dynamic instructions that read at least one register operand.
    pub read_candidates: u64,
    /// Dynamic instructions that write a destination register.
    pub write_candidates: u64,
    /// Dynamic instruction count per opcode kind.
    pub per_opcode: BTreeMap<String, u64>,
}

impl ExecutionProfile {
    /// Candidate count for a given injection surface.
    pub fn candidates_for(&self, on_write: bool) -> u64 {
        if on_write {
            self.write_candidates
        } else {
            self.read_candidates
        }
    }
}

/// Hook that builds an [`ExecutionProfile`] without perturbing execution.
#[derive(Debug, Default, Clone)]
pub struct CountingHook {
    profile: ExecutionProfile,
}

impl CountingHook {
    /// Create an empty counting hook.
    pub fn new() -> CountingHook {
        CountingHook::default()
    }

    /// Consume the hook and return the collected profile.
    pub fn into_profile(self) -> ExecutionProfile {
        self.profile
    }

    /// Borrow the profile collected so far.
    pub fn profile(&self) -> &ExecutionProfile {
        &self.profile
    }
}

impl ExecHook for CountingHook {
    fn on_instr(&mut self, ctx: &InstrContext) {
        self.profile.dynamic_instrs += 1;
        if ctx.reg_reads > 0 {
            self.profile.read_candidates += 1;
        }
        if ctx.has_dest {
            self.profile.write_candidates += 1;
        }
        *self
            .profile
            .per_opcode
            .entry(ctx.opcode.to_string())
            .or_insert(0) += 1;
    }
}

/// Hook that records the opcode of every dynamic instruction (for debugging
/// small programs and for tests that need full traces).
#[derive(Debug, Default, Clone)]
pub struct TraceHook {
    /// Opcode of each dynamic instruction in execution order.
    pub trace: Vec<Opcode>,
    /// Cap on the trace length; further instructions are counted but not stored.
    pub max_len: usize,
    /// Total dynamic instructions observed (may exceed `trace.len()`).
    pub total: u64,
}

impl TraceHook {
    /// Create a trace hook storing at most `max_len` opcodes.
    pub fn with_capacity(max_len: usize) -> TraceHook {
        TraceHook {
            trace: Vec::new(),
            max_len,
            total: 0,
        }
    }
}

impl ExecHook for TraceHook {
    fn on_instr(&mut self, ctx: &InstrContext) {
        self.total += 1;
        if self.trace.len() < self.max_len {
            self.trace.push(ctx.opcode);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Vm;
    use crate::limits::Limits;
    use mbfi_ir::{CompiledModule, ModuleBuilder, Type};

    fn sample_module() -> mbfi_ir::Module {
        let mut mb = ModuleBuilder::new("p");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 10i64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, i);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn counting_hook_counts_candidates() {
        let m = sample_module();
        let code = CompiledModule::lower(&m);
        let mut hook = CountingHook::new();
        let result = Vm::new(&code, Limits::default()).run(&mut hook);
        let profile = hook.into_profile();
        assert!(result.outcome.is_completed());
        assert_eq!(profile.dynamic_instrs, result.dynamic_instrs);
        // Every instruction except the initial constant store/alloca reads a register.
        assert!(profile.read_candidates > 0);
        assert!(profile.write_candidates > 0);
        // Stores and branches have no destination, so write candidates are fewer,
        // matching the shape of Table II.
        assert!(profile.write_candidates < profile.read_candidates);
        assert!(profile.per_opcode.contains_key("load"));
        assert!(profile.per_opcode.contains_key("store"));
        let opcode_total: u64 = profile.per_opcode.values().sum();
        assert_eq!(opcode_total, profile.dynamic_instrs);
    }

    #[test]
    fn candidates_for_selects_surface() {
        let p = ExecutionProfile {
            dynamic_instrs: 10,
            read_candidates: 7,
            write_candidates: 4,
            per_opcode: BTreeMap::new(),
        };
        assert_eq!(p.candidates_for(false), 7);
        assert_eq!(p.candidates_for(true), 4);
    }

    #[test]
    fn trace_hook_caps_its_length() {
        let m = sample_module();
        let code = CompiledModule::lower(&m);
        let mut hook = TraceHook::with_capacity(5);
        let result = Vm::new(&code, Limits::default()).run(&mut hook);
        assert_eq!(hook.trace.len(), 5);
        assert_eq!(hook.total, result.dynamic_instrs);
    }
}
