//! Fault-free profiling of a workload.
//!
//! A campaign first runs the program once with a [`CountingHook`] to learn
//!
//! * the total number of dynamic instructions (used to derive the hang
//!   threshold),
//! * the number of **inject-on-read candidates** — dynamic instructions
//!   reading at least one register operand, and
//! * the number of **inject-on-write candidates** — dynamic instructions
//!   producing a destination register.
//!
//! These are the per-workload "total number of candidate instructions for
//! fault injection" columns of Table II in the paper.  Injection targets are
//! then drawn uniformly from the candidate ordinals.
//!
//! Profiles are **mergeable**: [`ExecutionProfile`] implements `+=`
//! ([`std::ops::AddAssign`]), so per-worker or per-workload profiles collected
//! independently aggregate into one campaign-wide profile without any shared
//! state or locks during execution — each worker counts into its own profile
//! and the results fold together afterwards (the telemetry plane uses this to
//! surface one per-opcode dynamic-instruction histogram for a whole sweep).

use crate::hooks::{ExecHook, InstrContext};
use mbfi_ir::Opcode;
use std::collections::BTreeMap;
use std::ops::AddAssign;

/// Per-opcode slice of an [`ExecutionProfile`]: how many dynamic instructions
/// of this opcode executed, and how many of them were read/write injection
/// candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpcodeProfile {
    /// Dynamic instructions of this opcode.
    pub count: u64,
    /// Of those, instructions reading at least one register operand
    /// (inject-on-read candidates).
    pub read_candidates: u64,
    /// Of those, instructions writing a destination register
    /// (inject-on-write candidates).
    pub write_candidates: u64,
}

impl AddAssign for OpcodeProfile {
    fn add_assign(&mut self, rhs: OpcodeProfile) {
        self.count += rhs.count;
        self.read_candidates += rhs.read_candidates;
        self.write_candidates += rhs.write_candidates;
    }
}

/// Summary of a fault-free run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutionProfile {
    /// Total dynamic instructions executed.
    pub dynamic_instrs: u64,
    /// Dynamic instructions that read at least one register operand.
    pub read_candidates: u64,
    /// Dynamic instructions that write a destination register.
    pub write_candidates: u64,
    /// Per-opcode dynamic instruction and candidate counts.
    pub per_opcode: BTreeMap<String, OpcodeProfile>,
}

impl ExecutionProfile {
    /// Candidate count for a given injection surface.
    pub fn candidates_for(&self, on_write: bool) -> u64 {
        if on_write {
            self.write_candidates
        } else {
            self.read_candidates
        }
    }
}

/// Merge another profile into this one (all counts are sums, so merging is
/// commutative and associative — fold per-worker profiles in any order).
impl AddAssign<&ExecutionProfile> for ExecutionProfile {
    fn add_assign(&mut self, rhs: &ExecutionProfile) {
        self.dynamic_instrs += rhs.dynamic_instrs;
        self.read_candidates += rhs.read_candidates;
        self.write_candidates += rhs.write_candidates;
        for (opcode, stats) in &rhs.per_opcode {
            *self.per_opcode.entry(opcode.clone()).or_default() += *stats;
        }
    }
}

/// Hook that builds an [`ExecutionProfile`] without perturbing execution.
#[derive(Debug, Default, Clone)]
pub struct CountingHook {
    profile: ExecutionProfile,
}

impl CountingHook {
    /// Create an empty counting hook.
    pub fn new() -> CountingHook {
        CountingHook::default()
    }

    /// Consume the hook and return the collected profile.
    pub fn into_profile(self) -> ExecutionProfile {
        self.profile
    }

    /// Borrow the profile collected so far.
    pub fn profile(&self) -> &ExecutionProfile {
        &self.profile
    }
}

impl ExecHook for CountingHook {
    fn on_instr(&mut self, ctx: &InstrContext) {
        self.profile.dynamic_instrs += 1;
        let reads = u64::from(ctx.reg_reads > 0);
        let writes = u64::from(ctx.has_dest);
        self.profile.read_candidates += reads;
        self.profile.write_candidates += writes;
        let entry = self
            .profile
            .per_opcode
            .entry(ctx.opcode.to_string())
            .or_default();
        entry.count += 1;
        entry.read_candidates += reads;
        entry.write_candidates += writes;
    }
}

/// Hook that records the opcode of every dynamic instruction (for debugging
/// small programs and for tests that need full traces).
#[derive(Debug, Default, Clone)]
pub struct TraceHook {
    /// Opcode of each dynamic instruction in execution order.
    pub trace: Vec<Opcode>,
    /// Cap on the trace length; further instructions are counted but not stored.
    pub max_len: usize,
    /// Total dynamic instructions observed (may exceed `trace.len()`).
    pub total: u64,
}

impl TraceHook {
    /// Create a trace hook storing at most `max_len` opcodes.
    pub fn with_capacity(max_len: usize) -> TraceHook {
        TraceHook {
            trace: Vec::new(),
            max_len,
            total: 0,
        }
    }
}

impl ExecHook for TraceHook {
    fn on_instr(&mut self, ctx: &InstrContext) {
        self.total += 1;
        if self.trace.len() < self.max_len {
            self.trace.push(ctx.opcode);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Vm;
    use crate::limits::Limits;
    use mbfi_ir::{CompiledModule, ModuleBuilder, Type};

    fn sample_module() -> mbfi_ir::Module {
        let mut mb = ModuleBuilder::new("p");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 10i64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, i);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn counting_hook_counts_candidates() {
        let m = sample_module();
        let code = CompiledModule::lower(&m);
        let mut hook = CountingHook::new();
        let result = Vm::new(&code, Limits::default()).run(&mut hook);
        let profile = hook.into_profile();
        assert!(result.outcome.is_completed());
        assert_eq!(profile.dynamic_instrs, result.dynamic_instrs);
        // Every instruction except the initial constant store/alloca reads a register.
        assert!(profile.read_candidates > 0);
        assert!(profile.write_candidates > 0);
        // Stores and branches have no destination, so write candidates are fewer,
        // matching the shape of Table II.
        assert!(profile.write_candidates < profile.read_candidates);
        assert!(profile.per_opcode.contains_key("load"));
        assert!(profile.per_opcode.contains_key("store"));
        let opcode_total: u64 = profile.per_opcode.values().map(|s| s.count).sum();
        assert_eq!(opcode_total, profile.dynamic_instrs);
        // The per-opcode candidate counts partition the totals the same way.
        let reads: u64 = profile.per_opcode.values().map(|s| s.read_candidates).sum();
        let writes: u64 = profile
            .per_opcode
            .values()
            .map(|s| s.write_candidates)
            .sum();
        assert_eq!(reads, profile.read_candidates);
        assert_eq!(writes, profile.write_candidates);
        // `load` always reads its address register and writes its destination.
        let load = profile.per_opcode["load"];
        assert_eq!(load.read_candidates, load.count);
        assert_eq!(load.write_candidates, load.count);
        // `store` never writes a destination register.
        assert_eq!(profile.per_opcode["store"].write_candidates, 0);
    }

    #[test]
    fn candidates_for_selects_surface() {
        let p = ExecutionProfile {
            dynamic_instrs: 10,
            read_candidates: 7,
            write_candidates: 4,
            per_opcode: BTreeMap::new(),
        };
        assert_eq!(p.candidates_for(false), 7);
        assert_eq!(p.candidates_for(true), 4);
    }

    /// `+=` folds profiles field by field: two single-threaded halves of a run
    /// merge into exactly the whole-run profile, regardless of fold order.
    #[test]
    fn profiles_merge_with_add_assign() {
        let m = sample_module();
        let code = CompiledModule::lower(&m);
        let mut hook = CountingHook::new();
        Vm::new(&code, Limits::default()).run(&mut hook);
        let whole = hook.into_profile();

        // Split the per-opcode map into two disjoint "worker" profiles.
        let mut a = ExecutionProfile::default();
        let mut b = ExecutionProfile::default();
        for (i, (opcode, stats)) in whole.per_opcode.iter().enumerate() {
            let side = if i % 2 == 0 { &mut a } else { &mut b };
            side.dynamic_instrs += stats.count;
            side.read_candidates += stats.read_candidates;
            side.write_candidates += stats.write_candidates;
            side.per_opcode.insert(opcode.clone(), *stats);
        }
        let mut ab = a.clone();
        ab += &b;
        let mut ba = b.clone();
        ba += &a;
        assert_eq!(ab, whole, "disjoint halves merge back into the whole");
        assert_eq!(ba, whole, "merging is commutative");

        // Merging a profile into itself doubles every count.
        let mut doubled = whole.clone();
        doubled += &whole;
        assert_eq!(doubled.dynamic_instrs, 2 * whole.dynamic_instrs);
        assert_eq!(
            doubled.per_opcode["load"].count,
            2 * whole.per_opcode["load"].count
        );
        // Merging the empty profile is the identity.
        let mut id = whole.clone();
        id += &ExecutionProfile::default();
        assert_eq!(id, whole);
    }

    #[test]
    fn trace_hook_caps_its_length() {
        let m = sample_module();
        let code = CompiledModule::lower(&m);
        let mut hook = TraceHook::with_capacity(5);
        let result = Vm::new(&code, Limits::default()).run(&mut hook);
        assert_eq!(hook.trace.len(), 5);
        assert_eq!(hook.total, result.dynamic_instrs);
    }
}
