//! Complete interpreter state capture for checkpointed replay.
//!
//! A [`VmSnapshot`] freezes everything a [`crate::Vm`] needs to continue a
//! run from an exact dynamic-instruction boundary: the frame stack (with all
//! register values and, since the compiled-pipeline refactor, each frame's
//! flat program counter instead of a `(func, block, instr)` triple), the
//! full memory image, the output buffer and the dynamic-instruction counter.
//! Snapshots taken during a fault-free run let a fault-injection campaign
//! skip the fault-free prefix of each experiment: restore the nearest
//! checkpoint at or before the first injection point and execute only the
//! tail.
//!
//! Snapshots are tied to the compiled module they were captured from —
//! restoring a snapshot into a VM for a different module is undefined
//! behaviour at the semantic level (the interpreter will index into the
//! wrong code).  `mbfi-core`'s checkpoint store keeps the pairing implicit
//! by owning both.

use crate::interp::Frame;
use crate::memory::{ChunkSet, Memory};

/// Frozen interpreter state at a dynamic-instruction boundary.
///
/// Created by [`crate::Vm::snapshot`], consumed by [`crate::Vm::resume_from`].
/// The snapshot is independent of the VM that produced it: it owns clones of
/// the frame stack, memory image and output buffer, so one snapshot can seed
/// any number of replays (including concurrently — `VmSnapshot` is `Sync`).
#[derive(Debug, Clone)]
pub struct VmSnapshot {
    /// The call stack, innermost frame last.
    pub(crate) frames: Vec<Frame>,
    /// The memory image (globals, heap, stack segments).
    pub(crate) mem: Memory,
    /// Bytes printed so far.
    pub(crate) output: Vec<u8>,
    /// Dynamic instructions executed so far; the instruction with this index
    /// has *not* yet executed.
    pub(crate) dyn_count: u64,
}

impl VmSnapshot {
    /// Dynamic-instruction boundary this snapshot was taken at: the number of
    /// instructions already executed, which is also the `dyn_index` of the
    /// next instruction to run.
    pub fn dyn_count(&self) -> u64 {
        self.dyn_count
    }

    /// Call-stack depth at the snapshot point.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Bytes of output produced before the snapshot point.
    pub fn output_len(&self) -> usize {
        self.output.len()
    }

    /// Approximate heap footprint of this snapshot in bytes: unique memory
    /// chunks (each counted once even when several table slots share it),
    /// chunk-table overhead, register files and the output buffer.  Used by
    /// checkpoint stores to enforce a memory budget.
    pub fn approx_bytes(&self) -> usize {
        let mut seen = ChunkSet::default();
        self.unique_bytes(&mut seen)
    }

    /// Footprint in bytes *not already accounted* in `seen`: chunks shared
    /// with previously measured snapshots are free.  Feeding a checkpoint
    /// store's snapshots through one `ChunkSet` in order yields each one's
    /// marginal cost and, summed, the store's true unique footprint.
    pub fn unique_bytes(&self, seen: &mut ChunkSet) -> usize {
        let regs: usize = self
            .frames
            .iter()
            .map(|f| f.regs.len() * std::mem::size_of::<crate::Value>())
            .sum();
        self.mem.unique_bytes(seen)
            + regs
            + self.frames.len() * std::mem::size_of::<Frame>()
            + self.output.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Vm;
    use crate::limits::Limits;
    use crate::profile::CountingHook;
    use mbfi_ir::{CompiledModule, ModuleBuilder, Type};

    fn looping_module(n: i64) -> mbfi_ir::Module {
        let mut mb = ModuleBuilder::new("snap");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, i);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn snapshot_and_resume_reproduce_the_full_run() {
        let m = looping_module(100);
        let code = CompiledModule::lower(&m);
        let mut hook = crate::hooks::NoopHook;
        let full = Vm::new(&code, Limits::default()).run(&mut hook);

        // Pause mid-run, snapshot, and finish from the snapshot in a new VM.
        let mut vm = Vm::new(&code, Limits::default());
        assert!(vm.run_until(&mut hook, 123).is_none());
        let snap = vm.snapshot();
        assert_eq!(snap.dyn_count(), 123);
        assert!(snap.depth() >= 1);
        assert!(snap.approx_bytes() > 0);

        let mut resumed = Vm::new(&code, Limits::default());
        resumed.resume_from(&snap);
        let tail = resumed.run(&mut hook);
        assert_eq!(tail.outcome, full.outcome);
        assert_eq!(tail.output, full.output);
        assert_eq!(tail.dynamic_instrs, full.dynamic_instrs);
    }

    #[test]
    fn one_snapshot_seeds_many_replays() {
        let m = looping_module(50);
        let code = CompiledModule::lower(&m);
        let mut hook = crate::hooks::NoopHook;
        let full = Vm::new(&code, Limits::default()).run(&mut hook);

        let mut vm = Vm::new(&code, Limits::default());
        assert!(vm.run_until(&mut hook, 40).is_none());
        let snap = vm.snapshot();
        for _ in 0..3 {
            let mut r = Vm::new(&code, Limits::default());
            r.resume_from(&snap);
            let result = r.run(&mut hook);
            assert_eq!(result.output, full.output);
            assert_eq!(result.dynamic_instrs, full.dynamic_instrs);
        }
        // The paused original can also continue to the same result.
        let rest = vm.run(&mut hook);
        assert_eq!(rest.output, full.output);
    }

    #[test]
    fn snapshot_preserves_output_prefix() {
        let mut mb = ModuleBuilder::new("out");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            f.print_i64(1i64);
            f.print_i64(2i64);
            f.print_i64(3i64);
            f.ret_void();
        }
        mb.set_entry(main);
        let m = mb.finish();
        let code = CompiledModule::lower(&m);
        let mut hook = CountingHook::new();
        let mut vm = Vm::new(&code, Limits::default());
        // Run the first two prints, then snapshot.
        assert!(vm.run_until(&mut hook, 2).is_none());
        let snap = vm.snapshot();
        assert_eq!(snap.output_len(), b"1\n2\n".len());
        let mut r = Vm::new(&code, Limits::default());
        r.resume_from(&snap);
        let result = r.run(&mut hook);
        assert_eq!(result.output, b"1\n2\n3\n");
    }

    #[test]
    fn resumed_vm_keeps_its_own_limits() {
        // A snapshot taken under generous limits replayed under a tight
        // instruction limit must still hit the tight limit (hang detection
        // uses the experiment's limits, not the capture run's).
        let m = looping_module(1000);
        let code = CompiledModule::lower(&m);
        let mut hook = crate::hooks::NoopHook;
        let mut vm = Vm::new(&code, Limits::default());
        assert!(vm.run_until(&mut hook, 100).is_none());
        let snap = vm.snapshot();

        let mut tight = Vm::new(
            &code,
            Limits {
                max_dynamic_instrs: 150,
                ..Limits::default()
            },
        );
        tight.resume_from(&snap);
        let result = tight.run(&mut hook);
        assert_eq!(
            result.outcome,
            crate::interp::RunOutcome::InstrLimitExceeded
        );
        assert_eq!(result.dynamic_instrs, 150);
    }
}
