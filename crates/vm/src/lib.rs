//! # mbfi-vm
//!
//! The execution substrate of the mbfi fault-injection study: an interpreter
//! for the `mbfi-ir` intermediate representation with
//!
//! * a segmented memory model whose invalid / misaligned accesses raise the
//!   *hardware exceptions* of the paper's outcome taxonomy ([`Trap`]),
//! * dynamic-instruction accounting and configurable execution limits used
//!   for hang detection ([`Limits`]),
//! * an output buffer collected from print intrinsics and compared
//!   bit-wise against the golden run to detect silent data corruptions,
//! * and — most importantly — the [`ExecHook`] trait: every register read
//!   and every register write of every dynamic instruction is routed through
//!   the hook, which is exactly the surface the inject-on-read and
//!   inject-on-write techniques of LLFI corrupt.
//!
//! Execution is two-tier:
//!
//! * [`Vm`] — the production interpreter.  It executes a [`CompiledModule`]
//!   (the flat bytecode produced by [`CompiledModule::lower`]) with a single
//!   PC-indexed fetch per dynamic instruction, and its hook plumbing is
//!   generic over `H: ExecHook`, so a golden run with a [`NoopHook`]
//!   monomorphizes to zero dispatch overhead.
//! * [`WalkerVm`] — the legacy tree walker, retained as the behavioural
//!   reference for differential tests and throughput baselines.
//!
//! The fault injector itself lives in `mbfi-core`; this crate only knows how
//! to execute programs faithfully and expose the injection surface.

pub mod hooks;
pub mod interp;
pub mod limits;
pub mod memory;
pub mod ops;
pub mod profile;
pub mod snapshot;
pub mod trap;
pub mod value;
pub mod walker;

pub use hooks::{ExecHook, InstrContext, NoopHook};
pub use interp::{RunOutcome, RunResult, Vm};
pub use limits::Limits;
pub use mbfi_ir::compiled::CompiledModule;
pub use memory::{
    cow_enabled, set_cow_enabled, ChunkSet, CowStats, Memory, MemoryLayout, CHUNK_BYTES,
};
pub use profile::{CountingHook, ExecutionProfile, OpcodeProfile, TraceHook};
pub use snapshot::VmSnapshot;
pub use trap::Trap;
pub use value::Value;
pub use walker::WalkerVm;
