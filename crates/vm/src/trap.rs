//! Hardware exceptions raised by the VM.
//!
//! These are the events the paper's outcome classifier files under
//! *Detected by Hardware Exceptions*: segmentation faults, misaligned
//! accesses, arithmetic errors and aborts (§III-E).

use std::fmt;

/// A hardware exception terminating execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Access to an address outside every mapped segment (or to the null
    /// page), i.e. a segmentation fault.
    Segfault {
        /// Offending address.
        addr: u64,
    },
    /// Access that violates the natural alignment of the accessed type.
    Misaligned {
        /// Offending address.
        addr: u64,
        /// Required alignment in bytes.
        required: u64,
    },
    /// Integer division or remainder by zero (or signed overflow `MIN / -1`).
    DivideByZero,
    /// The program called `abort()` or executed `unreachable`.
    Abort,
    /// Call stack exceeded the configured depth limit.
    StackOverflow,
    /// The heap allocator ran out of its configured arena.
    OutOfMemory,
    /// A call through a corrupted function index.
    InvalidCall {
        /// The function index that was out of range.
        callee: u64,
    },
}

impl Trap {
    /// Short machine-readable name of the exception class.
    pub fn kind(&self) -> &'static str {
        match self {
            Trap::Segfault { .. } => "segfault",
            Trap::Misaligned { .. } => "misaligned",
            Trap::DivideByZero => "divide-by-zero",
            Trap::Abort => "abort",
            Trap::StackOverflow => "stack-overflow",
            Trap::OutOfMemory => "out-of-memory",
            Trap::InvalidCall { .. } => "invalid-call",
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Segfault { addr } => write!(f, "segmentation fault at {addr:#x}"),
            Trap::Misaligned { addr, required } => {
                write!(
                    f,
                    "misaligned access at {addr:#x} (requires {required}-byte alignment)"
                )
            }
            Trap::DivideByZero => write!(f, "integer divide by zero"),
            Trap::Abort => write!(f, "program aborted"),
            Trap::StackOverflow => write!(f, "call stack overflow"),
            Trap::OutOfMemory => write!(f, "heap arena exhausted"),
            Trap::InvalidCall { callee } => write!(f, "call to invalid function index {callee}"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_display_works() {
        let traps = [
            Trap::Segfault { addr: 0x10 },
            Trap::Misaligned {
                addr: 0x11,
                required: 4,
            },
            Trap::DivideByZero,
            Trap::Abort,
            Trap::StackOverflow,
            Trap::OutOfMemory,
            Trap::InvalidCall { callee: 99 },
        ];
        let kinds: std::collections::HashSet<_> = traps.iter().map(|t| t.kind()).collect();
        assert_eq!(kinds.len(), traps.len());
        for t in traps {
            assert!(!t.to_string().is_empty());
        }
    }
}
