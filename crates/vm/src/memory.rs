//! Segmented memory with trap semantics.
//!
//! The address space is divided into three disjoint segments — globals, heap
//! and stack — separated by large unmapped gaps.  A corrupted pointer almost
//! always lands in a gap or in the null page and raises a [`Trap::Segfault`],
//! which is what makes address-carrying registers far more likely to end up
//! in the *Detection* outcome category than data-carrying registers (the
//! mechanism behind the inject-on-read vs. inject-on-write asymmetry the
//! paper reports in §IV-A).

use crate::trap::Trap;
use mbfi_ir::{Module, Type};

/// Layout constants for the virtual address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Base address of the globals segment.
    pub globals_base: u64,
    /// Base address of the heap segment.
    pub heap_base: u64,
    /// Maximum size of the heap arena in bytes.
    pub heap_size: u64,
    /// Base address of the stack segment.
    pub stack_base: u64,
    /// Maximum size of the stack in bytes.
    pub stack_size: u64,
}

impl Default for MemoryLayout {
    fn default() -> Self {
        MemoryLayout {
            globals_base: 0x0001_0000,
            heap_base: 0x0100_0000,
            heap_size: 8 << 20,
            stack_base: 0x7000_0000,
            stack_size: 4 << 20,
        }
    }
}

/// One contiguous mapped region.
#[derive(Debug, Clone)]
struct Segment {
    base: u64,
    data: Vec<u8>,
}

impl Segment {
    fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.saturating_add(len) <= self.base + self.data.len() as u64
    }

    fn slice(&self, addr: u64, len: u64) -> &[u8] {
        let off = (addr - self.base) as usize;
        &self.data[off..off + len as usize]
    }

    fn slice_mut(&mut self, addr: u64, len: u64) -> &mut [u8] {
        let off = (addr - self.base) as usize;
        &mut self.data[off..off + len as usize]
    }
}

/// The VM's memory: globals, a bump-allocated heap, and a stack.
#[derive(Debug, Clone)]
pub struct Memory {
    layout: MemoryLayout,
    globals: Segment,
    heap: Segment,
    /// High-water mark of the heap bump allocator (offset from heap base).
    heap_top: u64,
    stack: Segment,
    /// Current top of stack (offset from stack base); grows upward.
    stack_top: u64,
    /// Resolved address of each module global, by global index.
    global_addrs: Vec<u64>,
}

impl Memory {
    /// Create the memory image for a module: lay out and initialise globals,
    /// map the (empty) heap and stack.
    pub fn for_module(module: &Module, layout: MemoryLayout) -> Memory {
        Memory::for_globals(&module.globals, layout)
    }

    /// Create the memory image from a bare global table (the form carried by
    /// a compiled module, which does not retain the source [`Module`]).
    pub fn for_globals(globals: &[mbfi_ir::Global], layout: MemoryLayout) -> Memory {
        let mut global_addrs = Vec::with_capacity(globals.len());
        let mut globals_data = Vec::new();
        for g in globals {
            // Align the next global.
            let align = g.align.max(1);
            while (layout.globals_base + globals_data.len() as u64) % align != 0 {
                globals_data.push(0);
            }
            global_addrs.push(layout.globals_base + globals_data.len() as u64);
            globals_data.extend_from_slice(&g.init);
            globals_data
                .extend(std::iter::repeat(0).take((g.size as usize).saturating_sub(g.init.len())));
        }

        Memory {
            layout,
            globals: Segment {
                base: layout.globals_base,
                data: globals_data,
            },
            heap: Segment {
                base: layout.heap_base,
                data: Vec::new(),
            },
            heap_top: 0,
            stack: Segment {
                base: layout.stack_base,
                data: Vec::new(),
            },
            stack_top: 0,
            global_addrs,
        }
    }

    /// The layout this memory was created with.
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    /// Total bytes currently backed by the three segments (globals + heap +
    /// stack).  This is the dominant term of a snapshot's footprint.
    pub fn data_bytes(&self) -> usize {
        self.globals.data.len() + self.heap.data.len() + self.stack.data.len()
    }

    /// Resolved address of global `index`.
    pub fn global_addr(&self, index: usize) -> Option<u64> {
        self.global_addrs.get(index).copied()
    }

    /// Allocate `size` bytes on the heap (8-byte aligned), returning the
    /// address, or [`Trap::OutOfMemory`] if the arena is exhausted.
    pub fn heap_alloc(&mut self, size: u64) -> Result<u64, Trap> {
        let aligned = size.div_ceil(8) * 8;
        if self.heap_top + aligned > self.layout.heap_size {
            return Err(Trap::OutOfMemory);
        }
        let addr = self.layout.heap_base + self.heap_top;
        self.heap_top += aligned;
        self.heap.data.resize(self.heap_top as usize, 0);
        Ok(addr)
    }

    /// Free a heap allocation.  The bump allocator does not reclaim space;
    /// the call only validates that the pointer points into the heap.
    pub fn heap_free(&mut self, addr: u64) -> Result<(), Trap> {
        if addr == 0 {
            return Ok(());
        }
        if addr < self.layout.heap_base || addr >= self.layout.heap_base + self.heap_top {
            return Err(Trap::Segfault { addr });
        }
        Ok(())
    }

    /// Push a stack frame of `size` bytes, returning its base address.
    pub fn stack_push(&mut self, size: u64) -> Result<u64, Trap> {
        let aligned = size.div_ceil(16) * 16;
        if self.stack_top + aligned > self.layout.stack_size {
            return Err(Trap::StackOverflow);
        }
        let addr = self.layout.stack_base + self.stack_top;
        self.stack_top += aligned;
        self.stack.data.resize(self.stack_top as usize, 0);
        Ok(addr)
    }

    /// Pop the stack back to a previously saved mark (from [`Memory::stack_mark`]).
    pub fn stack_pop_to(&mut self, mark: u64) {
        self.stack_top = mark;
        self.stack.data.truncate(mark as usize);
    }

    /// Current stack mark, to be restored when the active frame returns.
    pub fn stack_mark(&self) -> u64 {
        self.stack_top
    }

    fn segment_for(&self, addr: u64, len: u64) -> Result<&Segment, Trap> {
        if self.globals.contains(addr, len) {
            Ok(&self.globals)
        } else if self.heap.contains(addr, len) {
            Ok(&self.heap)
        } else if self.stack.contains(addr, len) {
            Ok(&self.stack)
        } else {
            Err(Trap::Segfault { addr })
        }
    }

    fn segment_for_mut(&mut self, addr: u64, len: u64) -> Result<&mut Segment, Trap> {
        if self.globals.contains(addr, len) {
            Ok(&mut self.globals)
        } else if self.heap.contains(addr, len) {
            Ok(&mut self.heap)
        } else if self.stack.contains(addr, len) {
            Ok(&mut self.stack)
        } else {
            Err(Trap::Segfault { addr })
        }
    }

    fn check_aligned(addr: u64, ty: Type) -> Result<(), Trap> {
        let required = ty.alignment();
        if addr % required != 0 {
            Err(Trap::Misaligned { addr, required })
        } else {
            Ok(())
        }
    }

    /// Load a typed scalar from `addr`.
    pub fn load(&self, ty: Type, addr: u64) -> Result<u64, Trap> {
        Self::check_aligned(addr, ty)?;
        let len = ty.byte_size();
        let seg = self.segment_for(addr, len)?;
        let bytes = seg.slice(addr, len);
        let mut buf = [0u8; 8];
        buf[..bytes.len()].copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf) & ty.bit_mask())
    }

    /// Store a typed scalar to `addr`.
    pub fn store(&mut self, ty: Type, addr: u64, bits: u64) -> Result<(), Trap> {
        Self::check_aligned(addr, ty)?;
        let len = ty.byte_size();
        let seg = self.segment_for_mut(addr, len)?;
        let bytes = (bits & ty.bit_mask()).to_le_bytes();
        seg.slice_mut(addr, len)
            .copy_from_slice(&bytes[..len as usize]);
        Ok(())
    }

    /// Read `len` raw bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Result<Vec<u8>, Trap> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let seg = self.segment_for(addr, len)?;
        Ok(seg.slice(addr, len).to_vec())
    }

    /// Write raw bytes starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        if bytes.is_empty() {
            return Ok(());
        }
        let seg = self.segment_for_mut(addr, bytes.len() as u64)?;
        seg.slice_mut(addr, bytes.len() as u64)
            .copy_from_slice(bytes);
        Ok(())
    }

    /// `memcpy(dst, src, len)`.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) -> Result<(), Trap> {
        let data = self.read_bytes(src, len)?;
        self.write_bytes(dst, &data)
    }

    /// `memset(dst, value, len)`.
    pub fn fill(&mut self, dst: u64, value: u8, len: u64) -> Result<(), Trap> {
        if len == 0 {
            return Ok(());
        }
        let seg = self.segment_for_mut(dst, len)?;
        seg.slice_mut(dst, len).fill(value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbfi_ir::{Global, Module};

    fn empty_memory() -> Memory {
        Memory::for_module(&Module::new("t"), MemoryLayout::default())
    }

    fn memory_with_global(bytes: Vec<u8>) -> Memory {
        let mut m = Module::new("t");
        m.globals.push(Global::with_bytes("g", bytes));
        Memory::for_module(&m, MemoryLayout::default())
    }

    #[test]
    fn globals_are_initialised_and_addressable() {
        let mem = memory_with_global(vec![1, 2, 3, 4]);
        let addr = mem.global_addr(0).unwrap();
        assert_eq!(mem.load(Type::I32, addr).unwrap(), 0x0403_0201);
        assert!(mem.global_addr(1).is_none());
    }

    #[test]
    fn null_and_unmapped_accesses_segfault() {
        let mem = empty_memory();
        assert_eq!(mem.load(Type::I64, 0), Err(Trap::Segfault { addr: 0 }));
        assert_eq!(
            mem.load(Type::I8, 0xdead_beef_0000),
            Err(Trap::Segfault {
                addr: 0xdead_beef_0000
            })
        );
    }

    #[test]
    fn misaligned_access_traps() {
        let mut mem = empty_memory();
        let addr = mem.heap_alloc(16).unwrap();
        assert!(matches!(
            mem.load(Type::I32, addr + 1),
            Err(Trap::Misaligned { required: 4, .. })
        ));
        assert!(matches!(
            mem.store(Type::I64, addr + 4, 1),
            Err(Trap::Misaligned { required: 8, .. })
        ));
    }

    #[test]
    fn heap_alloc_and_rw_round_trip() {
        let mut mem = empty_memory();
        let a = mem.heap_alloc(32).unwrap();
        mem.store(Type::I64, a, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.load(Type::I64, a).unwrap(), 0x1122_3344_5566_7788);
        mem.store(Type::I8, a + 8, 0xab).unwrap();
        assert_eq!(mem.load(Type::I8, a + 8).unwrap(), 0xab);
    }

    #[test]
    fn heap_exhaustion_reports_oom() {
        let mut mem = Memory::for_module(
            &Module::new("t"),
            MemoryLayout {
                heap_size: 64,
                ..MemoryLayout::default()
            },
        );
        assert!(mem.heap_alloc(48).is_ok());
        assert_eq!(mem.heap_alloc(48), Err(Trap::OutOfMemory));
    }

    #[test]
    fn heap_free_validates_pointer() {
        let mut mem = empty_memory();
        let a = mem.heap_alloc(8).unwrap();
        assert!(mem.heap_free(a).is_ok());
        assert!(mem.heap_free(0).is_ok());
        assert!(matches!(mem.heap_free(0x42), Err(Trap::Segfault { .. })));
    }

    #[test]
    fn stack_push_pop_restores_mark() {
        let mut mem = empty_memory();
        let mark = mem.stack_mark();
        let a = mem.stack_push(100).unwrap();
        mem.store(Type::I32, a, 7).unwrap();
        assert_eq!(mem.load(Type::I32, a).unwrap(), 7);
        mem.stack_pop_to(mark);
        assert!(mem.load(Type::I32, a).is_err());
    }

    #[test]
    fn stack_overflow_traps() {
        let mut mem = Memory::for_module(
            &Module::new("t"),
            MemoryLayout {
                stack_size: 128,
                ..MemoryLayout::default()
            },
        );
        assert!(mem.stack_push(64).is_ok());
        assert_eq!(mem.stack_push(128), Err(Trap::StackOverflow));
    }

    #[test]
    fn copy_and_fill() {
        let mut mem = empty_memory();
        let a = mem.heap_alloc(16).unwrap();
        let b = mem.heap_alloc(16).unwrap();
        mem.fill(a, 0x5a, 16).unwrap();
        mem.copy(b, a, 16).unwrap();
        assert_eq!(mem.read_bytes(b, 16).unwrap(), vec![0x5a; 16]);
        assert!(mem.copy(b, 0x3, 4).is_err());
    }

    #[test]
    fn cross_segment_access_is_rejected() {
        let mem = memory_with_global(vec![0; 8]);
        let addr = mem.global_addr(0).unwrap();
        // Reading past the end of the globals segment must not silently
        // succeed even though the next segment exists elsewhere.
        assert!(mem.read_bytes(addr, 4096).is_err());
    }
}
