//! Segmented memory with trap semantics, backed by copy-on-write chunks.
//!
//! The address space is divided into three disjoint segments — globals, heap
//! and stack — separated by large unmapped gaps.  A corrupted pointer almost
//! always lands in a gap or in the null page and raises a [`Trap::Segfault`],
//! which is what makes address-carrying registers far more likely to end up
//! in the *Detection* outcome category than data-carrying registers (the
//! mechanism behind the inject-on-read vs. inject-on-write asymmetry the
//! paper reports in §IV-A).
//!
//! ## Copy-on-write chunk storage
//!
//! Each segment stores its bytes as fixed-size [`CHUNK_BYTES`] chunks behind
//! `Arc`.  Cloning a `Memory` (what a snapshot does) clones the chunk
//! *tables*, not the bytes, so a snapshot costs O(chunks) pointer bumps.  The
//! first write to a chunk whose `Arc` is shared clones that one chunk
//! (`Arc::make_mut` semantics); restoring from a snapshot re-points only the
//! chunks that diverged (`Arc::ptr_eq` scan), making restore O(dirty chunks)
//! instead of O(image bytes).  Aligned scalar loads/stores (≤ 8 bytes, with
//! natural alignment) can never straddle a chunk boundary, so the hot
//! interpreter paths stay single-chunk; bulk operations walk chunks.
//!
//! All-zero growth (heap bumps, stack pushes) maps a single shared zero
//! chunk, so untouched arena pages are free and shared between every VM in
//! the process.  The `MBFI_COW` knob (see [`set_cow_enabled`]) can force
//! restores back onto the deep-copy path; results are byte-identical either
//! way — only the cost changes.

use crate::trap::Trap;
use mbfi_ir::{Module, Type};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Size of one memory chunk.  4 KiB mirrors a hardware page: small enough
/// that a typical experiment dirties only a handful, large enough that chunk
/// tables stay short (an 8 MiB heap is 2048 entries).
pub const CHUNK_BYTES: usize = 4096;
const CHUNK_SHIFT: u32 = CHUNK_BYTES.trailing_zeros();
const CHUNK_MASK: usize = CHUNK_BYTES - 1;

type Chunk = [u8; CHUNK_BYTES];

/// The process-wide shared all-zero chunk used for fresh growth.
fn zero_chunk() -> Arc<Chunk> {
    static ZERO: OnceLock<Arc<Chunk>> = OnceLock::new();
    Arc::clone(ZERO.get_or_init(|| Arc::new([0u8; CHUNK_BYTES])))
}

/// Process-wide switch between O(dirty-chunk) copy-on-write restores (the
/// default) and the historical deep-copy restore path.  Flipping it never
/// changes results — `snapshot_bench --check` enforces byte equivalence —
/// only the per-experiment cost.  Read once per restore, so toggling while
/// VMs are mid-run is safe but only affects subsequent restores.
static COW_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable copy-on-write snapshot restores (the `MBFI_COW` knob).
pub fn set_cow_enabled(enabled: bool) {
    COW_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether copy-on-write snapshot restores are enabled.
pub fn cow_enabled() -> bool {
    COW_ENABLED.load(Ordering::Relaxed)
}

/// Copy-on-write cost counters, accumulated per [`Memory`].
///
/// `cow_chunks_copied` counts 4 KiB chunk clones triggered by writes to
/// shared chunks (the true dirty-page cost of an experiment).
/// `restore_chunks_repointed` counts divergent chunks re-pointed during
/// restores (the O(dirty) restore work).  `restore_bytes_saved` counts bytes
/// a full-clone restore would have copied that the CoW restore did not; it
/// stays zero when CoW is disabled, which is what the accounting cross-checks
/// in `snapshot_bench --check` pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Chunks cloned because a write hit a shared chunk.
    pub cow_chunks_copied: u64,
    /// Divergent chunks re-pointed to the snapshot's chunk during restores.
    pub restore_chunks_repointed: u64,
    /// Bytes a deep-copy restore would have copied that CoW restores skipped.
    pub restore_bytes_saved: u64,
}

impl CowStats {
    fn add(&mut self, other: &CowStats) {
        self.cow_chunks_copied += other.cow_chunks_copied;
        self.restore_chunks_repointed += other.restore_chunks_repointed;
        self.restore_bytes_saved += other.restore_bytes_saved;
    }
}

/// Set of chunk identities (by allocation address), used to account unique
/// snapshot footprint across a whole checkpoint store: a chunk shared by ten
/// snapshots is charged once.
#[derive(Debug, Default, Clone)]
pub struct ChunkSet(HashSet<usize>);

impl ChunkSet {
    fn insert(&mut self, chunk: &Arc<Chunk>) -> bool {
        self.0.insert(Arc::as_ptr(chunk) as usize)
    }
}

/// Layout constants for the virtual address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Base address of the globals segment.
    pub globals_base: u64,
    /// Base address of the heap segment.
    pub heap_base: u64,
    /// Maximum size of the heap arena in bytes.
    pub heap_size: u64,
    /// Base address of the stack segment.
    pub stack_base: u64,
    /// Maximum size of the stack in bytes.
    pub stack_size: u64,
}

impl Default for MemoryLayout {
    fn default() -> Self {
        MemoryLayout {
            globals_base: 0x0001_0000,
            heap_base: 0x0100_0000,
            heap_size: 8 << 20,
            stack_base: 0x7000_0000,
            stack_size: 4 << 20,
        }
    }
}

/// One contiguous mapped region, stored as CHUNK_BYTES chunks behind `Arc`.
///
/// Invariant: `chunks.len() * CHUNK_BYTES >= len`, and every byte in
/// `[len, chunks.len() * CHUNK_BYTES)` of the *heap* segment is zero (the
/// bump allocator never shrinks).  The stack segment may carry stale bytes
/// past `len` after a pop; regrowth re-zeroes them to preserve the
/// "fresh memory reads as zero" semantics of the old `Vec::resize` storage.
#[derive(Clone)]
struct Segment {
    base: u64,
    /// Logical length in bytes; addresses in `[base, base + len)` are mapped.
    len: usize,
    chunks: Vec<Arc<Chunk>>,
    stats: CowStats,
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("base", &self.base)
            .field("len", &self.len)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

impl Segment {
    fn empty(base: u64) -> Segment {
        Segment {
            base,
            len: 0,
            chunks: Vec::new(),
            stats: CowStats::default(),
        }
    }

    fn from_bytes(base: u64, data: &[u8]) -> Segment {
        let mut chunks = Vec::with_capacity(data.len().div_ceil(CHUNK_BYTES));
        for piece in data.chunks(CHUNK_BYTES) {
            if piece.iter().all(|&b| b == 0) {
                chunks.push(zero_chunk());
            } else {
                let mut chunk = [0u8; CHUNK_BYTES];
                chunk[..piece.len()].copy_from_slice(piece);
                chunks.push(Arc::new(chunk));
            }
        }
        Segment {
            base,
            len: data.len(),
            chunks,
            stats: CowStats::default(),
        }
    }

    fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.saturating_add(len) <= self.base + self.len as u64
    }

    /// Shared view of an aligned scalar: naturally-aligned ≤ 8-byte accesses
    /// can never straddle a chunk boundary, so this is one index + one slice.
    #[inline]
    fn scalar(&self, off: usize, len: usize) -> &[u8] {
        let co = off & CHUNK_MASK;
        debug_assert!(co + len <= CHUNK_BYTES, "aligned scalar straddles chunk");
        &self.chunks[off >> CHUNK_SHIFT][co..co + len]
    }

    /// Exclusive access to chunk `ci`, cloning it first if it is shared.
    #[inline]
    fn chunk_mut(&mut self, ci: usize) -> &mut Chunk {
        let slot = &mut self.chunks[ci];
        if Arc::strong_count(slot) != 1 {
            *slot = Arc::new(**slot);
            self.stats.cow_chunks_copied += 1;
        }
        Arc::get_mut(&mut self.chunks[ci]).expect("chunk is uniquely owned after CoW clone")
    }

    #[inline]
    fn scalar_mut(&mut self, off: usize, len: usize) -> &mut [u8] {
        let co = off & CHUNK_MASK;
        debug_assert!(co + len <= CHUNK_BYTES, "aligned scalar straddles chunk");
        let chunk = self.chunk_mut(off >> CHUNK_SHIFT);
        &mut chunk[co..co + len]
    }

    fn read_into(&self, off: usize, out: &mut [u8]) {
        let mut pos = 0;
        while pos < out.len() {
            let at = off + pos;
            let co = at & CHUNK_MASK;
            let n = (CHUNK_BYTES - co).min(out.len() - pos);
            out[pos..pos + n].copy_from_slice(&self.chunks[at >> CHUNK_SHIFT][co..co + n]);
            pos += n;
        }
    }

    fn write_from(&mut self, off: usize, data: &[u8]) {
        let mut pos = 0;
        while pos < data.len() {
            let at = off + pos;
            let co = at & CHUNK_MASK;
            let n = (CHUNK_BYTES - co).min(data.len() - pos);
            self.chunk_mut(at >> CHUNK_SHIFT)[co..co + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    fn fill_range(&mut self, off: usize, len: usize, value: u8) {
        let mut pos = 0;
        while pos < len {
            let at = off + pos;
            let co = at & CHUNK_MASK;
            let n = (CHUNK_BYTES - co).min(len - pos);
            // Writing a value the range already holds everywhere would CoW a
            // shared chunk for nothing; the common case is zero-fill over
            // still-zero arena pages.
            if self.chunks[at >> CHUNK_SHIFT][co..co + n]
                .iter()
                .any(|&b| b != value)
            {
                self.chunk_mut(at >> CHUNK_SHIFT)[co..co + n].fill(value);
            }
            pos += n;
        }
    }

    /// Grow the mapped region to `new_len` bytes, reading as zero.  Bytes in
    /// already-allocated chunks are re-zeroed only if stale (stack regrowth
    /// after a pop); fresh coverage maps the shared zero chunk.
    fn grow_zeroed(&mut self, new_len: usize) {
        debug_assert!(new_len >= self.len);
        let covered = self.chunks.len() * CHUNK_BYTES;
        let reused_end = new_len.min(covered);
        if self.len < reused_end {
            let (start, len) = (self.len, reused_end - self.len);
            self.fill_range(start, len, 0);
        }
        while self.chunks.len() * CHUNK_BYTES < new_len {
            self.chunks.push(zero_chunk());
        }
        self.len = new_len;
    }

    /// Shrink the mapped region; chunks are retained for cheap regrowth
    /// (mirroring `Vec::truncate` keeping its capacity).
    fn shrink(&mut self, new_len: usize) {
        debug_assert!(new_len <= self.len);
        self.len = new_len;
    }

    /// Drop chunks past the logical length (high-water reset).  Used when
    /// building snapshot images so a deep-stack excursion during capture does
    /// not permanently inflate every later restore.
    fn trim(&mut self) {
        self.chunks.truncate(self.len.div_ceil(CHUNK_BYTES));
    }

    /// O(dirty) restore: re-point only the chunks that diverge from `other`.
    fn restore_cow(&mut self, other: &Segment) {
        debug_assert_eq!(self.base, other.base);
        self.chunks.truncate(other.chunks.len());
        let common = self.chunks.len();
        for (mine, theirs) in self.chunks.iter_mut().zip(&other.chunks) {
            if !Arc::ptr_eq(mine, theirs) {
                *mine = Arc::clone(theirs);
                self.stats.restore_chunks_repointed += 1;
            }
        }
        for theirs in &other.chunks[common..] {
            self.chunks.push(Arc::clone(theirs));
            self.stats.restore_chunks_repointed += 1;
        }
        self.stats.restore_bytes_saved += (other.chunks.len() * CHUNK_BYTES) as u64;
        self.len = other.len;
    }

    /// Deep-copy restore: the historical clone-everything path, kept as the
    /// baseline the CoW path is benchmarked and cross-checked against.
    fn restore_full(&mut self, other: &Segment) {
        debug_assert_eq!(self.base, other.base);
        self.chunks.clear();
        self.chunks
            .extend(other.chunks.iter().map(|c| Arc::new(**c)));
        self.len = other.len;
    }

    /// Bytes of chunk storage not yet seen in `seen` (unique footprint).
    fn unique_bytes(&self, seen: &mut ChunkSet) -> usize {
        let mut bytes = self.chunks.len() * std::mem::size_of::<Arc<Chunk>>();
        for chunk in &self.chunks {
            if seen.insert(chunk) {
                bytes += CHUNK_BYTES;
            }
        }
        bytes
    }
}

/// The VM's memory: globals, a bump-allocated heap, and a stack.
#[derive(Debug, Clone)]
pub struct Memory {
    layout: MemoryLayout,
    globals: Segment,
    heap: Segment,
    /// High-water mark of the heap bump allocator (offset from heap base).
    heap_top: u64,
    stack: Segment,
    /// Current top of stack (offset from stack base); grows upward.
    stack_top: u64,
    /// Resolved address of each module global, by global index.
    global_addrs: Vec<u64>,
}

impl Memory {
    /// Create the memory image for a module: lay out and initialise globals,
    /// map the (empty) heap and stack.
    pub fn for_module(module: &Module, layout: MemoryLayout) -> Memory {
        Memory::for_globals(&module.globals, layout)
    }

    /// Create the memory image from a bare global table (the form carried by
    /// a compiled module, which does not retain the source [`Module`]).
    pub fn for_globals(globals: &[mbfi_ir::Global], layout: MemoryLayout) -> Memory {
        let mut global_addrs = Vec::with_capacity(globals.len());
        let mut globals_data = Vec::new();
        for g in globals {
            // Align the next global.
            let align = g.align.max(1);
            while (layout.globals_base + globals_data.len() as u64) % align != 0 {
                globals_data.push(0);
            }
            global_addrs.push(layout.globals_base + globals_data.len() as u64);
            globals_data.extend_from_slice(&g.init);
            globals_data
                .extend(std::iter::repeat(0).take((g.size as usize).saturating_sub(g.init.len())));
        }

        Memory {
            layout,
            globals: Segment::from_bytes(layout.globals_base, &globals_data),
            heap: Segment::empty(layout.heap_base),
            heap_top: 0,
            stack: Segment::empty(layout.stack_base),
            stack_top: 0,
            global_addrs,
        }
    }

    /// The layout this memory was created with.
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    /// Logical bytes mapped by the three segments (globals + heap + stack) —
    /// the size of the address space a program can touch, independent of how
    /// much of it is backed by shared chunks.
    pub fn data_bytes(&self) -> usize {
        self.globals.len + self.heap.len + self.stack.len
    }

    /// Bytes of chunk storage referenced by this memory, counting each chunk
    /// once even if several table slots share it within the image.  Shared
    /// chunks referenced by *other* images are still charged here; see
    /// [`Memory::unique_bytes`] for cross-image dedup.
    pub fn resident_bytes(&self) -> usize {
        let mut seen = ChunkSet::default();
        self.unique_bytes(&mut seen)
    }

    /// Bytes of chunk storage not yet accounted in `seen`.  Feeding every
    /// snapshot of a checkpoint store through one `ChunkSet` yields the
    /// store's true unique footprint.
    pub fn unique_bytes(&self, seen: &mut ChunkSet) -> usize {
        self.globals.unique_bytes(seen)
            + self.heap.unique_bytes(seen)
            + self.stack.unique_bytes(seen)
    }

    /// Copy-on-write cost counters accumulated by this memory (summed over
    /// the three segments) since creation or the last [`Memory::reset_cow_stats`].
    pub fn cow_stats(&self) -> CowStats {
        let mut s = self.globals.stats;
        s.add(&self.heap.stats);
        s.add(&self.stack.stats);
        s
    }

    /// Zero the copy-on-write cost counters.
    pub fn reset_cow_stats(&mut self) {
        self.globals.stats = CowStats::default();
        self.heap.stats = CowStats::default();
        self.stack.stats = CowStats::default();
    }

    /// Heap bump-allocator high-water mark (bytes from heap base).
    pub fn heap_top(&self) -> u64 {
        self.heap_top
    }

    /// Current stack top (bytes from stack base).
    pub fn stack_top(&self) -> u64 {
        self.stack_top
    }

    /// A trimmed, stats-free clone for freezing into a snapshot: chunk tables
    /// are truncated at the logical tops, so chunks above the snapshot's
    /// heap/stack high-water marks are dropped rather than carried forever.
    pub fn snapshot_image(&self) -> Memory {
        let mut image = self.clone();
        image.globals.trim();
        image.heap.trim();
        image.stack.trim();
        image.reset_cow_stats();
        image
    }

    /// A zero-copy fork of `self` sharing every chunk (used to seed a fresh
    /// VM from a snapshot image).  Counts the full image as restore bytes
    /// saved, since a deep clone would have copied all of it.
    pub fn fork_cow(&self) -> Memory {
        let mut fork = self.clone();
        fork.reset_cow_stats();
        let chunks = fork.globals.chunks.len() + fork.heap.chunks.len() + fork.stack.chunks.len();
        fork.globals.stats.restore_bytes_saved = (chunks * CHUNK_BYTES) as u64;
        fork
    }

    /// A deep fork of `self`: every chunk is copied, no sharing.  The
    /// clone-everything baseline for `MBFI_COW=off`.
    pub fn fork_full(&self) -> Memory {
        let mut fork = self.clone();
        fork.reset_cow_stats();
        for seg in [&mut fork.globals, &mut fork.heap, &mut fork.stack] {
            for slot in &mut seg.chunks {
                *slot = Arc::new(**slot);
            }
        }
        fork
    }

    /// Fork honouring the process-wide CoW switch.
    pub fn fork(&self) -> Memory {
        if cow_enabled() {
            self.fork_cow()
        } else {
            self.fork_full()
        }
    }

    /// Reset this memory to the state frozen in `other`, honouring the
    /// process-wide CoW switch: O(dirty chunks) when enabled, a deep copy
    /// when not.  Also resets the heap/stack high-water marks, truncating
    /// chunk tables above the restored tops.
    pub fn restore_from(&mut self, other: &Memory) {
        self.restore_from_with(other, cow_enabled());
    }

    /// [`Memory::restore_from`] with an explicit mode, for tests and benches
    /// that must not depend on the process-wide switch.
    pub fn restore_from_with(&mut self, other: &Memory, cow: bool) {
        debug_assert_eq!(self.layout, other.layout);
        if cow {
            self.globals.restore_cow(&other.globals);
            self.heap.restore_cow(&other.heap);
            self.stack.restore_cow(&other.stack);
        } else {
            self.globals.restore_full(&other.globals);
            self.heap.restore_full(&other.heap);
            self.stack.restore_full(&other.stack);
        }
        self.heap_top = other.heap_top;
        self.stack_top = other.stack_top;
        self.global_addrs.clone_from(&other.global_addrs);
    }

    /// Resolved address of global `index`.
    pub fn global_addr(&self, index: usize) -> Option<u64> {
        self.global_addrs.get(index).copied()
    }

    /// Allocate `size` bytes on the heap (8-byte aligned), returning the
    /// address, or [`Trap::OutOfMemory`] if the arena is exhausted.
    pub fn heap_alloc(&mut self, size: u64) -> Result<u64, Trap> {
        let aligned = size.div_ceil(8) * 8;
        if self.heap_top + aligned > self.layout.heap_size {
            return Err(Trap::OutOfMemory);
        }
        let addr = self.layout.heap_base + self.heap_top;
        self.heap_top += aligned;
        self.heap.grow_zeroed(self.heap_top as usize);
        Ok(addr)
    }

    /// Free a heap allocation.  The bump allocator does not reclaim space;
    /// the call only validates that the pointer points into the heap.
    pub fn heap_free(&mut self, addr: u64) -> Result<(), Trap> {
        if addr == 0 {
            return Ok(());
        }
        if addr < self.layout.heap_base || addr >= self.layout.heap_base + self.heap_top {
            return Err(Trap::Segfault { addr });
        }
        Ok(())
    }

    /// Push a stack frame of `size` bytes, returning its base address.
    pub fn stack_push(&mut self, size: u64) -> Result<u64, Trap> {
        let aligned = size.div_ceil(16) * 16;
        if self.stack_top + aligned > self.layout.stack_size {
            return Err(Trap::StackOverflow);
        }
        let addr = self.layout.stack_base + self.stack_top;
        self.stack_top += aligned;
        self.stack.grow_zeroed(self.stack_top as usize);
        Ok(addr)
    }

    /// Pop the stack back to a previously saved mark (from [`Memory::stack_mark`]).
    pub fn stack_pop_to(&mut self, mark: u64) {
        self.stack_top = mark;
        self.stack.shrink(mark as usize);
    }

    /// Current stack mark, to be restored when the active frame returns.
    pub fn stack_mark(&self) -> u64 {
        self.stack_top
    }

    fn segment_for(&self, addr: u64, len: u64) -> Result<&Segment, Trap> {
        if self.globals.contains(addr, len) {
            Ok(&self.globals)
        } else if self.heap.contains(addr, len) {
            Ok(&self.heap)
        } else if self.stack.contains(addr, len) {
            Ok(&self.stack)
        } else {
            Err(Trap::Segfault { addr })
        }
    }

    fn segment_for_mut(&mut self, addr: u64, len: u64) -> Result<&mut Segment, Trap> {
        if self.globals.contains(addr, len) {
            Ok(&mut self.globals)
        } else if self.heap.contains(addr, len) {
            Ok(&mut self.heap)
        } else if self.stack.contains(addr, len) {
            Ok(&mut self.stack)
        } else {
            Err(Trap::Segfault { addr })
        }
    }

    fn check_aligned(addr: u64, ty: Type) -> Result<(), Trap> {
        let required = ty.alignment();
        if addr % required != 0 {
            Err(Trap::Misaligned { addr, required })
        } else {
            Ok(())
        }
    }

    /// Load a typed scalar from `addr`.
    pub fn load(&self, ty: Type, addr: u64) -> Result<u64, Trap> {
        Self::check_aligned(addr, ty)?;
        let len = ty.byte_size();
        let seg = self.segment_for(addr, len)?;
        let bytes = seg.scalar((addr - seg.base) as usize, len as usize);
        let mut buf = [0u8; 8];
        buf[..bytes.len()].copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf) & ty.bit_mask())
    }

    /// Store a typed scalar to `addr`.
    pub fn store(&mut self, ty: Type, addr: u64, bits: u64) -> Result<(), Trap> {
        Self::check_aligned(addr, ty)?;
        let len = ty.byte_size();
        let seg = self.segment_for_mut(addr, len)?;
        let bytes = (bits & ty.bit_mask()).to_le_bytes();
        let off = (addr - seg.base) as usize;
        seg.scalar_mut(off, len as usize)
            .copy_from_slice(&bytes[..len as usize]);
        Ok(())
    }

    /// Read `len` raw bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Result<Vec<u8>, Trap> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let seg = self.segment_for(addr, len)?;
        let mut out = vec![0u8; len as usize];
        seg.read_into((addr - seg.base) as usize, &mut out);
        Ok(out)
    }

    /// Write raw bytes starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        if bytes.is_empty() {
            return Ok(());
        }
        let seg = self.segment_for_mut(addr, bytes.len() as u64)?;
        let off = (addr - seg.base) as usize;
        seg.write_from(off, bytes);
        Ok(())
    }

    /// `memcpy(dst, src, len)`.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) -> Result<(), Trap> {
        let data = self.read_bytes(src, len)?;
        self.write_bytes(dst, &data)
    }

    /// `memset(dst, value, len)`.
    pub fn fill(&mut self, dst: u64, value: u8, len: u64) -> Result<(), Trap> {
        if len == 0 {
            return Ok(());
        }
        let seg = self.segment_for_mut(dst, len)?;
        let off = (dst - seg.base) as usize;
        seg.fill_range(off, len as usize, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbfi_ir::{Global, Module};

    fn empty_memory() -> Memory {
        Memory::for_module(&Module::new("t"), MemoryLayout::default())
    }

    fn memory_with_global(bytes: Vec<u8>) -> Memory {
        let mut m = Module::new("t");
        m.globals.push(Global::with_bytes("g", bytes));
        Memory::for_module(&m, MemoryLayout::default())
    }

    #[test]
    fn globals_are_initialised_and_addressable() {
        let mem = memory_with_global(vec![1, 2, 3, 4]);
        let addr = mem.global_addr(0).unwrap();
        assert_eq!(mem.load(Type::I32, addr).unwrap(), 0x0403_0201);
        assert!(mem.global_addr(1).is_none());
    }

    #[test]
    fn null_and_unmapped_accesses_segfault() {
        let mem = empty_memory();
        assert_eq!(mem.load(Type::I64, 0), Err(Trap::Segfault { addr: 0 }));
        assert_eq!(
            mem.load(Type::I8, 0xdead_beef_0000),
            Err(Trap::Segfault {
                addr: 0xdead_beef_0000
            })
        );
    }

    #[test]
    fn misaligned_access_traps() {
        let mut mem = empty_memory();
        let addr = mem.heap_alloc(16).unwrap();
        assert!(matches!(
            mem.load(Type::I32, addr + 1),
            Err(Trap::Misaligned { required: 4, .. })
        ));
        assert!(matches!(
            mem.store(Type::I64, addr + 4, 1),
            Err(Trap::Misaligned { required: 8, .. })
        ));
    }

    #[test]
    fn heap_alloc_and_rw_round_trip() {
        let mut mem = empty_memory();
        let a = mem.heap_alloc(32).unwrap();
        mem.store(Type::I64, a, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.load(Type::I64, a).unwrap(), 0x1122_3344_5566_7788);
        mem.store(Type::I8, a + 8, 0xab).unwrap();
        assert_eq!(mem.load(Type::I8, a + 8).unwrap(), 0xab);
    }

    #[test]
    fn heap_exhaustion_reports_oom() {
        let mut mem = Memory::for_module(
            &Module::new("t"),
            MemoryLayout {
                heap_size: 64,
                ..MemoryLayout::default()
            },
        );
        assert!(mem.heap_alloc(48).is_ok());
        assert_eq!(mem.heap_alloc(48), Err(Trap::OutOfMemory));
    }

    #[test]
    fn heap_free_validates_pointer() {
        let mut mem = empty_memory();
        let a = mem.heap_alloc(8).unwrap();
        assert!(mem.heap_free(a).is_ok());
        assert!(mem.heap_free(0).is_ok());
        assert!(matches!(mem.heap_free(0x42), Err(Trap::Segfault { .. })));
    }

    #[test]
    fn stack_push_pop_restores_mark() {
        let mut mem = empty_memory();
        let mark = mem.stack_mark();
        let a = mem.stack_push(100).unwrap();
        mem.store(Type::I32, a, 7).unwrap();
        assert_eq!(mem.load(Type::I32, a).unwrap(), 7);
        mem.stack_pop_to(mark);
        assert!(mem.load(Type::I32, a).is_err());
    }

    #[test]
    fn stack_regrowth_after_pop_reads_as_zero() {
        // The chunk table retains popped chunks for cheap regrowth; the
        // stale bytes in them must not leak into the re-pushed frame.
        let mut mem = empty_memory();
        let mark = mem.stack_mark();
        let a = mem.stack_push(64).unwrap();
        mem.store(Type::I64, a, u64::MAX).unwrap();
        mem.stack_pop_to(mark);
        let b = mem.stack_push(64).unwrap();
        assert_eq!(b, a);
        assert_eq!(mem.load(Type::I64, b).unwrap(), 0);
    }

    #[test]
    fn stack_overflow_traps() {
        let mut mem = Memory::for_module(
            &Module::new("t"),
            MemoryLayout {
                stack_size: 128,
                ..MemoryLayout::default()
            },
        );
        assert!(mem.stack_push(64).is_ok());
        assert_eq!(mem.stack_push(128), Err(Trap::StackOverflow));
    }

    #[test]
    fn copy_and_fill() {
        let mut mem = empty_memory();
        let a = mem.heap_alloc(16).unwrap();
        let b = mem.heap_alloc(16).unwrap();
        mem.fill(a, 0x5a, 16).unwrap();
        mem.copy(b, a, 16).unwrap();
        assert_eq!(mem.read_bytes(b, 16).unwrap(), vec![0x5a; 16]);
        assert!(mem.copy(b, 0x3, 4).is_err());
    }

    #[test]
    fn cross_segment_access_is_rejected() {
        let mem = memory_with_global(vec![0; 8]);
        let addr = mem.global_addr(0).unwrap();
        // Reading past the end of the globals segment must not silently
        // succeed even though the next segment exists elsewhere.
        assert!(mem.read_bytes(addr, 4096).is_err());
    }

    #[test]
    fn bulk_ops_straddle_chunk_boundaries() {
        let mut mem = empty_memory();
        let a = mem.heap_alloc(3 * CHUNK_BYTES as u64).unwrap();
        let pattern: Vec<u8> = (0..2 * CHUNK_BYTES).map(|i| (i % 251) as u8).collect();
        // Write starting mid-chunk so the slice spans three chunks.
        let start = a + (CHUNK_BYTES / 2) as u64;
        mem.write_bytes(start, &pattern).unwrap();
        assert_eq!(
            mem.read_bytes(start, pattern.len() as u64).unwrap(),
            pattern
        );
        mem.fill(start + 10, 0xee, (CHUNK_BYTES + 20) as u64)
            .unwrap();
        let mut expect = pattern.clone();
        expect[10..10 + CHUNK_BYTES + 20].fill(0xee);
        assert_eq!(mem.read_bytes(start, pattern.len() as u64).unwrap(), expect);
    }

    #[test]
    fn clones_share_chunks_until_first_write() {
        let mut mem = empty_memory();
        let a = mem.heap_alloc(4 * CHUNK_BYTES as u64).unwrap();
        mem.fill(a, 0x11, 4 * CHUNK_BYTES as u64).unwrap();
        let mut fork = mem.fork_cow();
        assert_eq!(fork.cow_stats().cow_chunks_copied, 0);

        // One store dirties exactly one chunk; the other three stay shared.
        fork.store(Type::I8, a + CHUNK_BYTES as u64, 0x77).unwrap();
        assert_eq!(fork.cow_stats().cow_chunks_copied, 1);
        // The original is unaffected.
        assert_eq!(mem.load(Type::I8, a + CHUNK_BYTES as u64).unwrap(), 0x11);
        assert_eq!(fork.load(Type::I8, a + CHUNK_BYTES as u64).unwrap(), 0x77);

        // A second store into the same (now unique) chunk copies nothing.
        fork.store(Type::I8, a + CHUNK_BYTES as u64 + 8, 0x78)
            .unwrap();
        assert_eq!(fork.cow_stats().cow_chunks_copied, 1);
    }

    #[test]
    fn restore_repoints_only_dirty_chunks() {
        let mut mem = empty_memory();
        let a = mem.heap_alloc(8 * CHUNK_BYTES as u64).unwrap();
        mem.fill(a, 0x22, 8 * CHUNK_BYTES as u64).unwrap();
        let image = mem.snapshot_image();

        let mut vm_mem = image.fork_cow();
        vm_mem.reset_cow_stats();
        // Dirty chunks 2 and 5.
        vm_mem
            .store(Type::I8, a + 2 * CHUNK_BYTES as u64, 0xff)
            .unwrap();
        vm_mem
            .store(Type::I8, a + 5 * CHUNK_BYTES as u64, 0xff)
            .unwrap();
        assert_eq!(vm_mem.cow_stats().cow_chunks_copied, 2);

        vm_mem.reset_cow_stats();
        vm_mem.restore_from_with(&image, true);
        let stats = vm_mem.cow_stats();
        assert_eq!(stats.restore_chunks_repointed, 2);
        assert!(stats.restore_bytes_saved >= (8 * CHUNK_BYTES) as u64);
        assert_eq!(
            vm_mem.load(Type::I8, a + 2 * CHUNK_BYTES as u64).unwrap(),
            0x22
        );
        assert_eq!(
            vm_mem.load(Type::I8, a + 5 * CHUNK_BYTES as u64).unwrap(),
            0x22
        );
    }

    #[test]
    fn full_clone_restore_matches_cow_restore_and_saves_nothing() {
        let mut mem = memory_with_global(vec![9; 100]);
        let a = mem.heap_alloc(2 * CHUNK_BYTES as u64).unwrap();
        mem.write_bytes(a, &[5; 64]).unwrap();
        let image = mem.snapshot_image();

        let mut cow = image.fork_cow();
        let mut full = image.fork_full();
        for m in [&mut cow, &mut full] {
            m.store(Type::I64, a, 0xdead).unwrap();
            m.stack_push(32).unwrap();
        }
        cow.restore_from_with(&image, true);
        full.restore_from_with(&image, false);

        assert_eq!(
            cow.read_bytes(a, 2 * CHUNK_BYTES as u64).unwrap(),
            full.read_bytes(a, 2 * CHUNK_BYTES as u64).unwrap()
        );
        assert_eq!(cow.stack_top(), full.stack_top());
        assert_eq!(full.cow_stats().restore_bytes_saved, 0);
        assert!(cow.cow_stats().restore_bytes_saved > 0);
    }

    #[test]
    fn restore_truncates_high_water_chunks() {
        let mut mem = empty_memory();
        let image = mem.snapshot_image();
        // Deep excursion: push 1 MiB of stack, then restore to the empty image.
        mem.stack_push(1 << 20).unwrap();
        let inflated = mem.resident_bytes();
        mem.restore_from_with(&image, true);
        assert_eq!(mem.stack_top(), 0);
        assert!(mem.resident_bytes() < inflated);
        // Regrowth after the reset still reads as zero.
        let a = mem.stack_push(64).unwrap();
        assert_eq!(mem.load(Type::I64, a).unwrap(), 0);
    }

    #[test]
    fn unique_bytes_dedups_shared_chunks() {
        let mut mem = empty_memory();
        let a = mem.heap_alloc(4 * CHUNK_BYTES as u64).unwrap();
        mem.fill(a, 1, 4 * CHUNK_BYTES as u64).unwrap();
        let image = mem.snapshot_image();
        let fork = image.fork_cow();

        let mut seen = ChunkSet::default();
        let first = image.unique_bytes(&mut seen);
        assert!(first >= 4 * CHUNK_BYTES);
        // The fork shares every chunk: only its table overhead is new.
        let second = fork.unique_bytes(&mut seen);
        assert!(second < CHUNK_BYTES);
    }

    #[test]
    fn zero_growth_is_shared_not_copied() {
        let mut a = empty_memory();
        let mut b = empty_memory();
        a.heap_alloc(1 << 20).unwrap();
        b.heap_alloc(1 << 20).unwrap();
        // Untouched arena pages all map the one process-wide zero chunk.
        let mut seen = ChunkSet::default();
        a.unique_bytes(&mut seen);
        let extra = b.unique_bytes(&mut seen);
        assert!(extra < CHUNK_BYTES);
        // Zero-fill over zero pages must not materialise private chunks.
        a.fill(a.layout().heap_base, 0, 1 << 20).unwrap();
        assert_eq!(a.cow_stats().cow_chunks_copied, 0);
    }
}
