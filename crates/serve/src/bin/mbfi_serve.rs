//! `mbfi-serve` — the campaign-service CLI.
//!
//! ```text
//! mbfi-serve daemon [--addr-file PATH]          start the daemon (default)
//! mbfi-serve submit --connect HOST:PORT [...]   submit a grid, print stats
//! mbfi-serve watch --connect HOST:PORT          stream the global event log
//! mbfi-serve shutdown --connect HOST:PORT       drain and stop the daemon
//! ```
//!
//! The daemon reads the `MBFI_SERVE_PORT` / `MBFI_SERVE_THREADS` /
//! `MBFI_SERVE_QUOTA` / `MBFI_SERVE_PENDING` / `MBFI_SERVE_READ_TIMEOUT_MS`
//! knobs.  `submit --compare` re-runs the same grid in-process through
//! `Sweep::run` and exits non-zero unless the served report is
//! byte-identical — the CI smoke test of the service path.

use mbfi_core::{FaultModel, Sweep, SweepCampaign, SweepConfig, Technique};
use mbfi_serve::{CellRequest, GridRequest, ServerConfig};
use mbfi_workloads::{workload_by_name, InputSize};
use std::process::ExitCode;

const USAGE: &str = "usage: mbfi-serve [daemon|submit|watch|shutdown] [options]
  daemon    [--addr-file PATH]
  submit    --connect HOST:PORT [--workloads a,b,c] [--size tiny|small]
            [--technique read|write|both] [--experiments N] [--seed N]
            [--threads N] [--priority N] [--compare] [--quiet]
  watch     --connect HOST:PORT
  shutdown  --connect HOST:PORT";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.first().map(String::as_str) {
        None => ("daemon", &args[..]),
        Some(c @ ("daemon" | "submit" | "watch" | "shutdown")) => (c, &args[1..]),
        Some(flag) if flag.starts_with("--") => ("daemon", &args[..]),
        Some(other) => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "daemon" => run_daemon(rest),
        "submit" => run_submit(rest),
        "watch" => run_watch(rest),
        "shutdown" => run_shutdown(rest),
        _ => unreachable!(),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mbfi-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pull the value of `--flag VALUE` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Pull the boolean `--flag` out of `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
    default: T,
) -> Result<T, String> {
    match take_flag(args, flag)? {
        Some(v) => v
            .trim()
            .parse()
            .map_err(|_| format!("malformed {flag} value {v:?}")),
        None => Ok(default),
    }
}

fn reject_leftovers(args: &[String]) -> Result<(), String> {
    if let Some(stray) = args.first() {
        return Err(format!("unexpected argument {stray:?}\n{USAGE}"));
    }
    Ok(())
}

fn run_daemon(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let addr_file = take_flag(&mut args, "--addr-file")?;
    reject_leftovers(&args)?;
    let handle = mbfi_serve::spawn(ServerConfig::from_env()).map_err(|e| e.to_string())?;
    let addr = handle.addr();
    if let Some(path) = addr_file {
        std::fs::write(&path, format!("{addr}\n"))
            .map_err(|e| format!("writing {path:?} failed: {e}"))?;
    }
    println!("mbfi-serve listening on {addr}");
    handle.join();
    println!("mbfi-serve drained and stopped");
    Ok(ExitCode::SUCCESS)
}

fn parse_grid(args: &mut Vec<String>) -> Result<GridRequest, String> {
    let workloads = take_flag(args, "--workloads")?.unwrap_or_else(|| "qsort".to_string());
    let size = match take_flag(args, "--size")?.as_deref().unwrap_or("tiny") {
        "tiny" => InputSize::Tiny,
        "small" => InputSize::Small,
        other => return Err(format!("unknown --size {other:?} (tiny|small)")),
    };
    let techniques: Vec<Technique> =
        match take_flag(args, "--technique")?.as_deref().unwrap_or("read") {
            "read" => vec![Technique::InjectOnRead],
            "write" => vec![Technique::InjectOnWrite],
            "both" => Technique::ALL.to_vec(),
            other => return Err(format!("unknown --technique {other:?} (read|write|both)")),
        };
    let experiments = parse_flag(args, "--experiments", 100usize)?;
    let seed = parse_flag(args, "--seed", 0xB17F_11B5u64)?;
    let threads = parse_flag(args, "--threads", 0usize)?;
    let priority = parse_flag(args, "--priority", 0u8)?;
    let mut cells = Vec::new();
    for name in workloads
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
    {
        for &technique in &techniques {
            cells.push(CellRequest {
                workload: name.to_string(),
                size,
                technique,
                model: FaultModel::single_bit(),
                experiments,
                seed,
                hang_factor: 20,
                precision: None,
            });
        }
    }
    if cells.is_empty() {
        return Err("empty --workloads list".to_string());
    }
    Ok(GridRequest {
        threads,
        priority,
        cells,
    })
}

fn run_submit(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--connect")?.ok_or("submit needs --connect HOST:PORT")?;
    let compare = take_switch(&mut args, "--compare");
    let quiet = take_switch(&mut args, "--quiet");
    let grid = parse_grid(&mut args)?;
    reject_leftovers(&args)?;

    let outcome = mbfi_serve::submit(addr.as_str(), &grid).map_err(|e| e.to_string())?;
    if !quiet {
        for result in &outcome.report.results {
            let r = &result.result;
            println!(
                "{} {} n={} sdc={} detected={}",
                r.spec.technique.short_name(),
                r.spec.model,
                r.counts.total(),
                r.counts.sdc,
                r.counts.hw_exception + r.counts.hang
            );
        }
    }
    println!(
        "job {}: {} cells, {} deduped, {} events, {} experiments",
        outcome.job,
        grid.cells.len(),
        outcome.deduped,
        outcome.events.len(),
        outcome
            .report
            .results
            .iter()
            .map(|r| r.result.counts.total())
            .sum::<u64>()
    );

    if compare {
        let local = run_in_process(&grid)?;
        let served = outcome.report.to_json().render();
        let expected = local.to_json().render();
        if served == expected {
            println!("compare: served report is byte-identical to in-process Sweep::run");
        } else {
            eprintln!("compare: MISMATCH between served and in-process reports");
            eprintln!("  served:   {} bytes", served.len());
            eprintln!("  expected: {} bytes", expected.len());
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Run the same grid in-process, exactly as the daemon does: per-cell
/// normalised specs (`threads = 0`), shared artefact per `(workload, size)`.
fn run_in_process(grid: &GridRequest) -> Result<mbfi_core::SweepReport, String> {
    let mut units: Vec<mbfi_core::EngineUnit> = Vec::new();
    let mut keys: Vec<(String, InputSize)> = Vec::new();
    let mut campaigns = Vec::new();
    for cell in &grid.cells {
        let key = (cell.workload.to_ascii_lowercase(), cell.size);
        let unit = match keys.iter().position(|k| *k == key) {
            Some(i) => i,
            None => {
                let spec = workload_by_name(&cell.workload)
                    .ok_or_else(|| format!("unknown workload {:?}", cell.workload))?;
                let module = spec.build_module(cell.size);
                let code = mbfi_ir::CompiledModule::lower(&module);
                let golden = mbfi_core::GoldenRun::capture_compiled(&code)
                    .map_err(|e| format!("golden run failed: {e:?}"))?;
                units.push(mbfi_core::EngineUnit::new(code, golden));
                keys.push(key);
                units.len() - 1
            }
        };
        campaigns.push(SweepCampaign {
            unit,
            spec: cell.spec(),
        });
    }
    // The daemon runs each cell as its own single-cell job, so the
    // comparison must also sweep per cell: the report is then assembled
    // from per-cell results just like `handle_submit` does.  Because the
    // executor is deterministic, both decompositions yield byte-identical
    // per-cell results — which is exactly what --compare is checking.
    let views: Vec<mbfi_core::SweepUnit<'_>> = units.iter().map(|u| u.view()).collect();
    let config = SweepConfig {
        threads: grid.threads,
        batch_size: 0,
        keep_records: false,
        precision: None,
    };
    Ok(Sweep::run(&views, &campaigns, &config))
}

fn run_watch(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--connect")?.ok_or("watch needs --connect HOST:PORT")?;
    reject_leftovers(&args)?;
    let seen = mbfi_serve::watch(addr.as_str(), &mut |line| println!("{line}"))
        .map_err(|e| e.to_string())?;
    eprintln!("watch: stream closed after {seen} events");
    Ok(ExitCode::SUCCESS)
}

fn run_shutdown(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--connect")?.ok_or("shutdown needs --connect HOST:PORT")?;
    reject_leftovers(&args)?;
    mbfi_serve::shutdown(addr.as_str()).map_err(|e| e.to_string())?;
    println!("shutdown requested");
    Ok(ExitCode::SUCCESS)
}
