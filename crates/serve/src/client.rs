//! Client side of the campaign service: connect, submit a grid, stream the
//! events, collect the report.  Used by `mbfi-serve submit`,
//! `mbfi-monitor --connect` and `serve_bench`.

use crate::protocol::{self, Ack, CellRequest, Request, SubmitRequest};
use mbfi_core::{SweepReport, TelemetryEvent};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ServeError {
    /// Connection / transport failure.
    Io(std::io::Error),
    /// The daemon sent something the protocol does not allow.
    Protocol(String),
    /// The daemon rejected the request with an error frame.
    Remote(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "connection failed: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Remote(msg) => write!(f, "daemon error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// A grid to submit: the body of the `submit` verb.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRequest {
    /// Thread hint for batch sizing (0 = all parallelism).
    pub threads: usize,
    /// Scheduling priority (higher wins).
    pub priority: u8,
    /// The cells.
    pub cells: Vec<CellRequest>,
}

/// Everything a completed submission returned.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Serve-level submission id.
    pub job: u64,
    /// Cells the daemon deduplicated onto another client's execution.
    pub deduped: u64,
    /// Telemetry events observed, in stream order.
    pub events: Vec<TelemetryEvent>,
    /// The final report, byte-identical to an in-process `Sweep::run` of
    /// the same grid.
    pub report: SweepReport,
}

fn connect(addr: impl ToSocketAddrs) -> Result<TcpStream, ServeError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

/// Submit a grid and wait for the report, discarding progress events.
pub fn submit(addr: impl ToSocketAddrs, req: &GridRequest) -> Result<ServeOutcome, ServeError> {
    submit_with(addr, req, &mut |_| {})
}

/// Submit a grid, invoking `on_event` for every telemetry event as it
/// arrives, and wait for the report.
pub fn submit_with(
    addr: impl ToSocketAddrs,
    req: &GridRequest,
    on_event: &mut dyn FnMut(&TelemetryEvent),
) -> Result<ServeOutcome, ServeError> {
    let mut stream = connect(addr)?;
    let line = Request::Submit(SubmitRequest {
        threads: req.threads,
        priority: req.priority,
        cells: req.cells.clone(),
    })
    .to_line();
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;

    let mut reader = BufReader::new(stream.try_clone()?);
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Err(ServeError::Protocol(
            "connection closed before the ack".to_string(),
        ));
    }
    if let Some(msg) = protocol::parse_error(&first) {
        return Err(ServeError::Remote(msg));
    }
    let ack = Ack::parse(&first)
        .ok_or_else(|| ServeError::Protocol(format!("expected an ack, got {}", first.trim())))?;

    let mut events = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(ServeError::Protocol(
                "connection closed before the report".to_string(),
            ));
        }
        if let Some(msg) = protocol::parse_error(&line) {
            return Err(ServeError::Remote(msg));
        }
        if let Some(report) = protocol::parse_report(&line) {
            return Ok(ServeOutcome {
                job: ack.job,
                deduped: ack.deduped,
                events,
                report,
            });
        }
        match TelemetryEvent::parse_line(line.trim()) {
            Ok(event) => {
                on_event(&event);
                events.push(event);
            }
            Err(e) => return Err(ServeError::Protocol(e)),
        }
    }
}

/// Follow the daemon's global event stream, invoking `on_line` for every
/// raw JSONL line until the daemon closes the stream (shutdown) or the
/// connection drops.  Returns the number of lines observed.
pub fn watch(addr: impl ToSocketAddrs, on_line: &mut dyn FnMut(&str)) -> Result<u64, ServeError> {
    let mut stream = connect(addr)?;
    stream.write_all(Request::Watch.to_line().as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut seen = 0u64;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(seen);
        }
        if let Some(msg) = protocol::parse_error(&line) {
            return Err(ServeError::Remote(msg));
        }
        on_line(line.trim_end());
        seen += 1;
    }
}

/// Ask the daemon to drain in-flight jobs and exit.
pub fn shutdown(addr: impl ToSocketAddrs) -> Result<(), ServeError> {
    let mut stream = connect(addr)?;
    stream.write_all(Request::Shutdown.to_line().as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ServeError::Protocol(
            "connection closed before the shutdown ack".to_string(),
        ));
    }
    if let Some(msg) = protocol::parse_error(&line) {
        return Err(ServeError::Remote(msg));
    }
    Ok(())
}
