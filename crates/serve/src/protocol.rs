//! The JSON-lines wire protocol of `mbfi-serve`.
//!
//! Every frame is one JSON object on one `\n`-terminated line, built and
//! parsed with the dependency-free [`mbfi_core::report::json`] pair (no
//! serde — the build works fully offline, and [`Json::parse`] is hardened
//! for untrusted input: byte-offset errors, recursion-depth limit,
//! input-size guard).
//!
//! ## Requests (client → server, exactly one per connection)
//!
//! ```json
//! {"cmd":"submit","threads":4,"priority":0,"cells":[{...}, ...]}
//! {"cmd":"watch"}
//! {"cmd":"shutdown"}
//! ```
//!
//! A cell spec names a workload and a campaign:
//!
//! ```json
//! {"workload":"qsort","size":"small","technique":"read",
//!  "model":{"max_mbf":3,"win_size":{"fixed":0}},
//!  "experiments":1000,"seed":12345,"hang_factor":20,"precision":null}
//! ```
//!
//! ## Responses (server → client)
//!
//! A submit connection receives an ack, then the cell's telemetry-schema
//! event stream (`sweep_started`/`cell_planned`/`batch_done`/`round_done`/
//! `cell_finished`/`sweep_finished`, exactly the JSONL schema of
//! [`mbfi_core::telemetry`]), then one final report frame:
//!
//! ```json
//! {"ok":true,"job":7,"cells":15,"deduped":4}
//! {"seq":0,"t_ns":...,"kind":"sweep_started",...}
//! ...
//! {"report":{...}}
//! ```
//!
//! Any failure is one error frame, after which the connection closes (and
//! the daemon keeps serving everyone else):
//!
//! ```json
//! {"ok":false,"error":"unknown workload \"qsrot\""}
//! ```

use mbfi_core::report::json::Json;
use mbfi_core::{CampaignSpec, FaultModel, Precision, SweepReport, Technique};
use mbfi_workloads::InputSize;

/// Upper bound on the byte length of one request line.  Far above any real
/// grid spec; a client pushing more than this gets an error frame instead
/// of an unbounded buffer.
pub const MAX_LINE_BYTES: usize = 1024 * 1024;

/// One requested sweep cell: a workload plus a campaign on it.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRequest {
    /// Workload name, matched case-insensitively against the registry.
    pub workload: String,
    /// Input scale (`"tiny"` or `"small"`).
    pub size: InputSize,
    /// Injection technique.
    pub technique: Technique,
    /// Fault model.
    pub model: FaultModel,
    /// Fixed-n experiment budget (ignored when `precision` is set, exactly
    /// as in [`mbfi_core::SweepConfig`]).
    pub experiments: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Hang threshold multiple.
    pub hang_factor: u64,
    /// Optional adaptive precision target for this cell.
    pub precision: Option<Precision>,
}

impl CellRequest {
    /// The campaign spec this cell executes as.  `threads` is pinned to 0:
    /// it has no effect on results (the engine pool runs the job), and
    /// normalising it lets two clients that only differ in `threads` share
    /// one execution in the cell cache.
    pub fn spec(&self) -> CampaignSpec {
        CampaignSpec {
            technique: self.technique,
            model: self.model,
            experiments: self.experiments,
            seed: self.seed,
            hang_factor: self.hang_factor,
            threads: 0,
        }
    }

    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("workload", self.workload.as_str());
        obj.set("size", self.size.to_string());
        obj.set("technique", self.technique.short_name());
        obj.set("model", self.model.to_json());
        obj.set("experiments", self.experiments);
        obj.set("seed", self.seed);
        obj.set("hang_factor", self.hang_factor);
        obj.set(
            "precision",
            match &self.precision {
                Some(p) => p.to_json(),
                None => Json::Null,
            },
        );
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &Json) -> Option<CellRequest> {
        Some(CellRequest {
            workload: v.get("workload")?.as_str()?.to_string(),
            size: parse_size(v.get("size")?.as_str()?)?,
            technique: Technique::from_short_name(v.get("technique")?.as_str()?)?,
            model: FaultModel::from_json(v.get("model")?)?,
            experiments: usize::try_from(v.get("experiments")?.as_u64()?).ok()?,
            seed: v.get("seed")?.as_u64()?,
            hang_factor: v.get("hang_factor")?.as_u64()?,
            precision: match v.get("precision")? {
                Json::Null => None,
                p => Some(Precision::from_json(p)?),
            },
        })
    }
}

/// Parse an [`InputSize`] label (`"tiny"` / `"small"`).
pub fn parse_size(label: &str) -> Option<InputSize> {
    InputSize::ALL
        .into_iter()
        .find(|s| s.to_string() == label.trim().to_ascii_lowercase())
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a grid; the connection then streams that job.
    Submit(SubmitRequest),
    /// Follow the daemon's global event stream from the beginning.
    Watch,
    /// Ask the daemon to drain and exit.
    Shutdown,
}

/// The body of a `submit` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Thread hint: feeds the job's batch sizing exactly like
    /// [`mbfi_core::SweepConfig::threads`] (0 = all parallelism).  Does not
    /// size any pool — the engine's own workers run the job.
    pub threads: usize,
    /// Scheduling priority of this client (higher wins; equal round-robin).
    pub priority: u8,
    /// The cells to run, in submission order.
    pub cells: Vec<CellRequest>,
}

impl SubmitRequest {
    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("cmd", "submit");
        obj.set("threads", self.threads);
        obj.set("priority", u64::from(self.priority));
        obj.set(
            "cells",
            Json::Arr(self.cells.iter().map(|c| c.to_json()).collect()),
        );
        obj
    }
}

impl Request {
    /// Render the request as one wire line (without the trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit(req) => req.to_json().render(),
            Request::Watch => "{\"cmd\":\"watch\"}".to_string(),
            Request::Shutdown => "{\"cmd\":\"shutdown\"}".to_string(),
        }
    }

    /// Parse one request line.  `Err` carries the message for the error
    /// frame — the daemon rejects the request and keeps running.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line.trim()).map_err(|e| e.to_string())?;
        match v.get("cmd").and_then(Json::as_str) {
            Some("submit") => {
                let threads = v
                    .get("threads")
                    .map(|t| t.as_u64().ok_or("malformed \"threads\""))
                    .transpose()?
                    .unwrap_or(0) as usize;
                let priority = v
                    .get("priority")
                    .map(|p| {
                        p.as_u64()
                            .and_then(|p| u8::try_from(p).ok())
                            .ok_or("malformed \"priority\" (0..=255)")
                    })
                    .transpose()?
                    .unwrap_or(0);
                let cells = v
                    .get("cells")
                    .and_then(Json::as_array)
                    .ok_or("submit requires a \"cells\" array")?;
                if cells.is_empty() {
                    return Err("submit requires at least one cell".to_string());
                }
                let cells = cells
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        CellRequest::from_json(c).ok_or_else(|| format!("malformed cell {i}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Submit(SubmitRequest {
                    threads,
                    priority,
                    cells,
                }))
            }
            Some("watch") => Ok(Request::Watch),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(format!("unknown cmd {other:?}")),
            None => Err("request needs a string \"cmd\" field".to_string()),
        }
    }
}

/// The ack frame a successful submit receives before its event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Serve-level submission id.
    pub job: u64,
    /// Number of cells in the job.
    pub cells: u64,
    /// How many of them were already executing (or done) for another
    /// client and were deduplicated onto that execution.
    pub deduped: u64,
}

impl Ack {
    /// Render the ack frame.
    pub fn to_line(&self) -> String {
        let mut obj = Json::object();
        obj.set("ok", true);
        obj.set("job", self.job);
        obj.set("cells", self.cells);
        obj.set("deduped", self.deduped);
        obj.render()
    }

    /// Parse an ack frame (`None` if the line is not a successful ack).
    pub fn parse(line: &str) -> Option<Ack> {
        let v = Json::parse(line.trim()).ok()?;
        if v.get("ok")?.as_bool()? {
            Some(Ack {
                job: v.get("job")?.as_u64()?,
                cells: v.get("cells")?.as_u64()?,
                deduped: v.get("deduped")?.as_u64()?,
            })
        } else {
            None
        }
    }
}

/// Render an error frame.
pub fn error_line(message: &str) -> String {
    let mut obj = Json::object();
    obj.set("ok", false);
    obj.set("error", message);
    obj.render()
}

/// Extract the error message if `line` is an error frame.
pub fn parse_error(line: &str) -> Option<String> {
    let v = Json::parse(line.trim()).ok()?;
    if v.get("ok")?.as_bool()? {
        return None;
    }
    Some(v.get("error")?.as_str()?.to_string())
}

/// Render the final report frame of a submit stream.
pub fn report_line(report: &SweepReport) -> String {
    let mut obj = Json::object();
    obj.set("report", report.to_json());
    obj.render()
}

/// Extract the report if `line` is a report frame.
pub fn parse_report(line: &str) -> Option<SweepReport> {
    SweepReport::from_json(Json::parse(line.trim()).ok()?.get("report")?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbfi_core::{IntervalMethod, WinSize};

    fn sample_cells() -> Vec<CellRequest> {
        vec![
            CellRequest {
                workload: "qsort".to_string(),
                size: InputSize::Tiny,
                technique: Technique::InjectOnRead,
                model: FaultModel::single_bit(),
                experiments: 100,
                seed: 0xB17,
                hang_factor: 20,
                precision: None,
            },
            CellRequest {
                workload: "sha".to_string(),
                size: InputSize::Small,
                technique: Technique::InjectOnWrite,
                model: FaultModel::multi_bit(4, WinSize::Random { lo: 2, hi: 10 }),
                experiments: 50,
                seed: 1,
                hang_factor: 8,
                precision: Some(Precision {
                    target_half_width_pct: 5.0,
                    min_experiments: 20,
                    max_experiments: 200,
                    interval: IntervalMethod::Wilson,
                }),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        let req = Request::Submit(SubmitRequest {
            threads: 4,
            priority: 7,
            cells: sample_cells(),
        });
        assert_eq!(Request::parse(&req.to_line()).unwrap(), req);
        assert_eq!(
            Request::parse(&Request::Watch.to_line()).unwrap(),
            Request::Watch
        );
        assert_eq!(
            Request::parse(&Request::Shutdown.to_line()).unwrap(),
            Request::Shutdown
        );
        // Omitted threads/priority default to 0.
        let bare = Request::parse("{\"cmd\":\"submit\",\"cells\":[]}");
        assert!(bare.is_err(), "empty grid is rejected");
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"cmd\":42}",
            "{\"cmd\":\"nope\"}",
            "{\"cmd\":\"submit\"}",
            "{\"cmd\":\"submit\",\"cells\":[{}]}",
            "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"qsort\",\"size\":\"huge\"}]}",
            "{\"cmd\":\"submit\",\"priority\":999,\"cells\":[]}",
        ] {
            assert!(Request::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn frames_round_trip() {
        let ack = Ack {
            job: 3,
            cells: 15,
            deduped: 4,
        };
        assert_eq!(Ack::parse(&ack.to_line()), Some(ack));
        assert_eq!(Ack::parse(&error_line("boom")), None);
        assert_eq!(parse_error(&error_line("boom")), Some("boom".to_string()));
        assert_eq!(parse_error(&ack.to_line()), None);

        let report = SweepReport {
            results: vec![],
            warnings: vec![],
        };
        assert_eq!(parse_report(&report_line(&report)), Some(report));
    }

    #[test]
    fn cell_spec_normalises_threads() {
        let cell = &sample_cells()[0];
        assert_eq!(cell.spec().threads, 0);
        assert_eq!(cell.spec().experiments, 100);
    }

    #[test]
    fn size_labels_parse() {
        assert_eq!(parse_size("tiny"), Some(InputSize::Tiny));
        assert_eq!(parse_size(" Small "), Some(InputSize::Small));
        assert_eq!(parse_size("huge"), None);
    }
}
