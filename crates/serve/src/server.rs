//! The daemon: a std-only TCP accept loop over the persistent
//! [`SweepEngine`].
//!
//! Each connection speaks one request of the [`crate::protocol`] grammar and
//! is handled on its own thread.  Submitted grids are deduplicated through
//! the [`crate::cache`] layer — the first requester of a cell owns its
//! engine job; later requesters (same connection or another client) tail
//! the owner's buffered event stream.  A `watch` connection replays the
//! daemon's global telemetry log from the beginning and then follows it
//! live.
//!
//! Failure containment: a malformed request, an unknown workload or a
//! mid-stream disconnect terminates *that connection only*.  The engine,
//! the caches, and every other connection keep running.  Shutdown (the
//! `shutdown` verb or [`ServerHandle::stop`]) is graceful: admission stops,
//! in-flight jobs drain to completion, every submit stream receives its
//! full report, and only then do the threads join.

use crate::cache::{ArtifactCache, CellCache, CellEntry, CellEvent, CellKey, Claim};
use crate::protocol::{self, Request, SubmitRequest, MAX_LINE_BYTES};
use mbfi_core::{
    CampaignWarning, CellInfo, EngineConfig, EventKind, JobEvent, JobSpec, SweepCampaign,
    SweepCampaignResult, SweepConfig, SweepEngine, SweepReport, TelemetryEvent,
};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const LOCK_POISONED: &str = "serve server lock poisoned";

/// Daemon knobs.  Every field has an `MBFI_SERVE_*` environment spelling
/// (see [`ServerConfig::from_env`]); unset or unparsable values fall back
/// to the defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral, kernel-assigned).
    pub port: u16,
    /// Engine worker threads (0 = all available parallelism).
    pub threads: usize,
    /// Per-client concurrent-batch quota (0 = one pool's worth).
    pub quota: usize,
    /// Admission bound: jobs active at once before submits block (0 = the
    /// engine default).
    pub max_pending: usize,
    /// Per-connection read timeout, milliseconds (a client that connects
    /// and never sends a request is dropped after this long).
    pub read_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            threads: 0,
            quota: 0,
            max_pending: 0,
            read_timeout_ms: 10_000,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl ServerConfig {
    /// Read the `MBFI_SERVE_PORT` / `MBFI_SERVE_THREADS` /
    /// `MBFI_SERVE_QUOTA` / `MBFI_SERVE_PENDING` /
    /// `MBFI_SERVE_READ_TIMEOUT_MS` knobs.
    pub fn from_env() -> ServerConfig {
        let d = ServerConfig::default();
        ServerConfig {
            port: env_parse("MBFI_SERVE_PORT", d.port),
            threads: env_parse("MBFI_SERVE_THREADS", d.threads),
            quota: env_parse("MBFI_SERVE_QUOTA", d.quota),
            max_pending: env_parse("MBFI_SERVE_PENDING", d.max_pending),
            read_timeout_ms: env_parse("MBFI_SERVE_READ_TIMEOUT_MS", d.read_timeout_ms),
        }
    }
}

/// Read one `\n`-terminated line from an untrusted stream, bounded at
/// [`MAX_LINE_BYTES`].  `Ok(None)` is a clean EOF before any byte.
fn read_line_bounded(reader: &mut impl Read) -> Result<Option<String>, String> {
    let mut buf: Vec<u8> = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    String::from_utf8(buf)
                        .map(Some)
                        .map_err(|_| "request is not valid UTF-8".to_string())
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return String::from_utf8(buf)
                        .map(Some)
                        .map_err(|_| "request is not valid UTF-8".to_string());
                }
                if buf.len() >= MAX_LINE_BYTES {
                    return Err(format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                }
                buf.push(byte[0]);
            }
            Err(e) => return Err(format!("read failed: {e}")),
        }
    }
}

fn send_line(mut stream: &TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// The daemon's global telemetry log: every executed cell's events, with
/// log-assigned gap-free sequence numbers, buffered for replay so a `watch`
/// connection arriving late still sees the stream from event 0.
struct WatchLog {
    state: Mutex<WatchState>,
    cond: Condvar,
    start: Instant,
}

#[derive(Default)]
struct WatchState {
    lines: Vec<String>,
    closed: bool,
}

impl WatchLog {
    fn new() -> WatchLog {
        WatchLog {
            state: Mutex::new(WatchState::default()),
            cond: Condvar::new(),
            start: Instant::now(),
        }
    }

    /// Append one event; its sequence number is its index in the log.
    /// No-op once closed.
    fn push(&self, kind: EventKind) {
        let mut state = self.state.lock().expect(LOCK_POISONED);
        if state.closed {
            return;
        }
        let event = TelemetryEvent {
            seq: state.lines.len() as u64,
            t_ns: self.start.elapsed().as_nanos() as u64,
            kind,
        };
        state.lines.push(event.render_line());
        self.cond.notify_all();
    }

    /// Close the log and wake every watcher; they drain what is buffered
    /// and disconnect.
    fn close(&self) {
        let mut state = self.state.lock().expect(LOCK_POISONED);
        state.closed = true;
        self.cond.notify_all();
    }

    /// Replay the log from event 0 and follow it live until the log closes
    /// or `emit` fails (client went away).
    fn tail(&self, mut emit: impl FnMut(&str) -> bool) {
        let mut next = 0usize;
        let mut state = self.state.lock().expect(LOCK_POISONED);
        loop {
            while next < state.lines.len() {
                if !emit(&state.lines[next]) {
                    return;
                }
                next += 1;
            }
            if state.closed {
                return;
            }
            state = self.cond.wait(state).expect(LOCK_POISONED);
        }
    }
}

struct Inner {
    engine: SweepEngine,
    cells: CellCache,
    artifacts: ArtifactCache,
    watch: WatchLog,
    stop: AtomicBool,
    addr: SocketAddr,
    read_timeout: Duration,
    /// Serve-level submission ids (the `job` field of ack frames).
    next_job: AtomicU64,
    /// Global cell-index allocator for the watch stream.
    next_cell: AtomicU64,
    /// Cumulative planned experiments across all executed cells.
    watch_planned: AtomicU64,
    /// Cumulative finished experiments across all executed cells.
    watch_finished: AtomicU64,
    /// Detached per-cell collector threads, joined at shutdown.
    collectors: Mutex<Vec<JoinHandle<()>>>,
    /// Per-connection handler threads, joined at shutdown.
    connections: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    /// Flip the stop flag; the first caller wakes the accept loop with a
    /// throwaway self-connection.
    fn trigger_stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Your end of a running daemon.
pub struct ServerHandle {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Begin a graceful shutdown (idempotent, non-blocking).
    pub fn stop(&self) {
        self.inner.trigger_stop();
    }

    /// Wait until the daemon exits (a `shutdown` request or
    /// [`ServerHandle::stop`]) and its graceful drain completes.  Does NOT
    /// itself initiate the shutdown.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.inner.trigger_stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Bind 127.0.0.1 and start serving.  Returns once the listener is live.
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", config.port))?;
    let addr = listener.local_addr()?;
    let inner = Arc::new(Inner {
        engine: SweepEngine::new(EngineConfig {
            threads: config.threads,
            max_pending: config.max_pending,
            quota: config.quota,
        }),
        cells: CellCache::default(),
        artifacts: ArtifactCache::default(),
        watch: WatchLog::new(),
        stop: AtomicBool::new(false),
        addr,
        read_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
        next_job: AtomicU64::new(0),
        next_cell: AtomicU64::new(0),
        watch_planned: AtomicU64::new(0),
        watch_finished: AtomicU64::new(0),
        collectors: Mutex::new(Vec::new()),
        connections: Mutex::new(Vec::new()),
    });
    let accept_inner = Arc::clone(&inner);
    let accept = std::thread::Builder::new()
        .name("mbfi-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_inner))?;
    Ok(ServerHandle {
        inner,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("mbfi-serve-conn".to_string())
            .spawn(move || handle_connection(&conn_inner, stream));
        if let Ok(handle) = handle {
            inner.connections.lock().expect(LOCK_POISONED).push(handle);
        }
    }
    drop(listener);
    // Graceful drain: stop admission and run every in-flight job to
    // completion (the engine's worker join IS the drain barrier) ...
    inner.engine.shutdown();
    // ... then collect the per-cell collectors (all of their event channels
    // are now fully buffered, so these joins are prompt) ...
    loop {
        let batch: Vec<JoinHandle<()>> =
            std::mem::take(&mut *inner.collectors.lock().expect(LOCK_POISONED));
        if batch.is_empty() {
            break;
        }
        for handle in batch {
            let _ = handle.join();
        }
    }
    // ... then release the watchers and wait out the connection handlers
    // (submit streams have their results by now; watch streams drain and
    // exit on the closed log).
    inner.watch.close();
    loop {
        let batch: Vec<JoinHandle<()>> =
            std::mem::take(&mut *inner.connections.lock().expect(LOCK_POISONED));
        if batch.is_empty() {
            break;
        }
        for handle in batch {
            let _ = handle.join();
        }
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let line = match read_line_bounded(&mut reader) {
        Ok(Some(line)) => line,
        Ok(None) => return, // clean EOF (e.g. the shutdown self-connect)
        Err(msg) => {
            let _ = send_line(&stream, &protocol::error_line(&msg));
            return;
        }
    };
    match Request::parse(&line) {
        Ok(Request::Submit(req)) => {
            let _ = handle_submit(inner, &stream, &req);
        }
        Ok(Request::Watch) => {
            inner.watch.tail(|line| send_line(&stream, line).is_ok());
        }
        Ok(Request::Shutdown) => {
            let _ = send_line(&stream, "{\"ok\":true}");
            inner.trigger_stop();
        }
        Err(msg) => {
            let _ = send_line(&stream, &protocol::error_line(&msg));
        }
    }
}

/// Per-connection telemetry emitter: connection-local sequence numbers and
/// cell indices, so each submit stream is an independently verifiable
/// JSONL stream (gap-free from 0).
struct EventStream<'a> {
    stream: &'a TcpStream,
    seq: u64,
    start: Instant,
}

impl EventStream<'_> {
    fn emit(&mut self, kind: EventKind) -> std::io::Result<()> {
        let event = TelemetryEvent {
            seq: self.seq,
            t_ns: self.start.elapsed().as_nanos() as u64,
            kind,
        };
        self.seq += 1;
        send_line(self.stream, &event.render_line())
    }
}

/// The experiment budget a cell announces in `cell_planned` (fixed n, or
/// the adaptive cap).
fn planned_budget(cell: &protocol::CellRequest) -> u64 {
    cell.precision
        .as_ref()
        .map(|p| p.max_experiments as u64)
        .unwrap_or(cell.experiments as u64)
}

fn cell_label(cell: &protocol::CellRequest) -> String {
    format!(
        "{}/{} {} {}",
        cell.workload.to_ascii_lowercase(),
        cell.size,
        cell.technique.short_name(),
        cell.model
    )
}

fn handle_submit(
    inner: &Arc<Inner>,
    stream: &TcpStream,
    req: &SubmitRequest,
) -> std::io::Result<()> {
    // Build (or hit) the artefacts of every referenced workload *before*
    // claiming any cell: an unknown workload must produce a clean error
    // frame without poisoning cache entries another client may be tailing.
    let mut units = Vec::with_capacity(req.cells.len());
    for cell in &req.cells {
        match inner.artifacts.get_or_build(&cell.workload, cell.size) {
            Ok(unit) => units.push(unit),
            Err(msg) => return send_line(stream, &protocol::error_line(&msg)),
        }
    }

    // Claim every cell: first requester (across ALL connections) owns the
    // execution, everyone else follows the owner's buffered stream.
    let claims: Vec<Claim> = req
        .cells
        .iter()
        .map(|cell| inner.cells.claim(CellKey::of(cell)))
        .collect();
    let deduped = claims
        .iter()
        .filter(|c| matches!(c, Claim::Follower(_)))
        .count() as u64;
    let owned: Vec<usize> = claims
        .iter()
        .enumerate()
        .filter_map(|(i, c)| matches!(c, Claim::Owner(_)).then_some(i))
        .collect();

    let job = inner.next_job.fetch_add(1, Ordering::SeqCst);
    send_line(
        stream,
        &protocol::Ack {
            job,
            cells: req.cells.len() as u64,
            deduped,
        }
        .to_line(),
    )?;

    // Announce the newly owned cells on the global watch stream.
    if !owned.is_empty() {
        let base = inner
            .next_cell
            .fetch_add(owned.len() as u64, Ordering::SeqCst);
        let planned_new: u64 = owned.iter().map(|&i| planned_budget(&req.cells[i])).sum();
        let planned_total =
            inner.watch_planned.fetch_add(planned_new, Ordering::SeqCst) + planned_new;
        inner.watch.push(EventKind::SweepStarted {
            cells: (base + owned.len() as u64) as usize,
            threads: inner.engine.threads(),
            planned: planned_total,
        });
        for (j, &i) in owned.iter().enumerate() {
            inner.watch.push(EventKind::CellPlanned {
                cell: (base + j as u64) as usize,
                info: CellInfo {
                    unit: (base + j as u64) as usize,
                    label: cell_label(&req.cells[i]),
                    planned: planned_budget(&req.cells[i]),
                },
            });
        }

        // Submit one engine job per owned cell and hand each to a detached
        // collector: execution is decoupled from this connection, so a
        // mid-stream disconnect never strands a follower on another
        // connection.
        let client = inner.engine.register_client(req.priority);
        for (j, &i) in owned.iter().enumerate() {
            let Claim::Owner(entry) = &claims[i] else {
                unreachable!("owned indices come from Owner claims")
            };
            let cell = &req.cells[i];
            let spec = JobSpec {
                client,
                units: vec![units[i].clone()],
                campaigns: vec![SweepCampaign {
                    unit: 0,
                    spec: cell.spec(),
                }],
                config: SweepConfig {
                    threads: req.threads,
                    batch_size: 0,
                    keep_records: false,
                    precision: cell.precision,
                },
            };
            match inner.engine.submit(spec) {
                Ok(handle) => {
                    let collector_inner = Arc::clone(inner);
                    let entry = Arc::clone(entry);
                    let key = CellKey::of(cell);
                    let gcell = (base + j as u64) as usize;
                    let collector = std::thread::Builder::new()
                        .name("mbfi-serve-cell".to_string())
                        .spawn(move || collect_cell(&collector_inner, handle, &entry, key, gcell));
                    if let Ok(handle) = collector {
                        inner.collectors.lock().expect(LOCK_POISONED).push(handle);
                    }
                }
                Err(e) => {
                    // Engine is draining: release this and every remaining
                    // owned cell so followers fail fast instead of hanging,
                    // and report the rejection to this client.
                    for &k in &owned[j..] {
                        if let Claim::Owner(entry) = &claims[k] {
                            entry.fail();
                            inner.cells.evict(&CellKey::of(&req.cells[k]));
                        }
                    }
                    inner.engine.unregister_client(client);
                    return send_line(stream, &protocol::error_line(&e.to_string()));
                }
            }
        }
        // Jobs drain on their own; the client record is reaped once the
        // last one lands.
        inner.engine.unregister_client(client);
    }

    // Stream the job to this client with connection-local indices: the
    // replayed per-cell streams concatenate into exactly the telemetry
    // schema a single in-process sweep would emit.
    let mut events = EventStream {
        stream,
        seq: 0,
        start: Instant::now(),
    };
    events.emit(EventKind::SweepStarted {
        cells: req.cells.len(),
        threads: req.threads,
        planned: req.cells.iter().map(planned_budget).sum(),
    })?;
    for (i, cell) in req.cells.iter().enumerate() {
        events.emit(EventKind::CellPlanned {
            cell: i,
            info: CellInfo {
                unit: i,
                label: cell_label(cell),
                planned: planned_budget(cell),
            },
        })?;
    }

    let mut results: Vec<Arc<SweepCampaignResult>> = Vec::with_capacity(req.cells.len());
    for (i, claim) in claims.iter().enumerate() {
        let entry: &Arc<CellEntry> = match claim {
            Claim::Owner(e) | Claim::Follower(e) => e,
        };
        let mut io: std::io::Result<()> = Ok(());
        let result = entry.tail(|event| {
            if io.is_err() {
                return;
            }
            io = events.emit(match *event {
                CellEvent::Batch {
                    batch,
                    experiments,
                    counts,
                    wall_ns,
                    worker,
                } => EventKind::BatchDone {
                    cell: i,
                    batch,
                    experiments,
                    counts,
                    wall_ns,
                    worker,
                    stolen: false,
                },
                CellEvent::Round {
                    round,
                    experiments,
                    sdc_half_width_pct,
                    detection_half_width_pct,
                    stopped,
                } => EventKind::RoundDone {
                    cell: i,
                    round,
                    experiments,
                    sdc_half_width_pct,
                    detection_half_width_pct,
                    stopped,
                },
            });
        });
        io?;
        let Some(result) = result else {
            return send_line(
                stream,
                &protocol::error_line(&format!(
                    "cell {i} was abandoned (daemon shut down before it ran)"
                )),
            );
        };
        events.emit(EventKind::CellFinished {
            cell: i,
            experiments: result.result.counts.total(),
            counts: result.result.counts,
            rounds: result
                .result
                .adaptive
                .as_ref()
                .map(|a| a.rounds)
                .unwrap_or(0),
        })?;
        results.push(result);
    }

    events.emit(EventKind::SweepFinished {
        cells: req.cells.len(),
        experiments: results.iter().map(|r| r.result.counts.total()).sum(),
        wall_ns: events.start.elapsed().as_nanos() as u64,
        cow_chunks_copied: 0,
        cow_restore_bytes_saved: 0,
    })?;

    // Assemble the final report exactly as `Sweep::run` would: results in
    // submission order, warnings deduplicated in submission order.
    let mut warnings: Vec<CampaignWarning> = Vec::new();
    for result in &results {
        for w in &result.result.warnings {
            if !warnings.contains(w) {
                warnings.push(*w);
            }
        }
    }
    let report = SweepReport {
        results: results.iter().map(|r| (**r).clone()).collect(),
        warnings,
    };
    send_line(stream, &protocol::report_line(&report))
}

/// Drain one single-cell engine job into its cache entry (and the global
/// watch stream).  Runs detached from the submitting connection.
fn collect_cell(
    inner: &Arc<Inner>,
    handle: mbfi_core::JobHandle,
    entry: &Arc<CellEntry>,
    key: CellKey,
    gcell: usize,
) {
    let mut finished = false;
    while let Some(event) = handle.next_event() {
        match event {
            JobEvent::BatchDone {
                batch,
                experiments,
                counts,
                wall_ns,
                worker,
                ..
            } => {
                entry.push_event(CellEvent::Batch {
                    batch,
                    experiments,
                    counts,
                    wall_ns,
                    worker,
                });
                inner.watch.push(EventKind::BatchDone {
                    cell: gcell,
                    batch,
                    experiments,
                    counts,
                    wall_ns,
                    worker,
                    stolen: false,
                });
            }
            JobEvent::RoundDone {
                round,
                experiments,
                sdc_half_width_pct,
                detection_half_width_pct,
                stopped,
                ..
            } => {
                entry.push_event(CellEvent::Round {
                    round,
                    experiments,
                    sdc_half_width_pct,
                    detection_half_width_pct,
                    stopped,
                });
                inner.watch.push(EventKind::RoundDone {
                    cell: gcell,
                    round,
                    experiments,
                    sdc_half_width_pct,
                    detection_half_width_pct,
                    stopped,
                });
            }
            JobEvent::CellFinished { result, .. } => {
                let result = Arc::new(*result);
                let experiments = result.result.counts.total();
                let rounds = result
                    .result
                    .adaptive
                    .as_ref()
                    .map(|a| a.rounds)
                    .unwrap_or(0);
                inner.watch.push(EventKind::CellFinished {
                    cell: gcell,
                    experiments,
                    counts: result.result.counts,
                    rounds,
                });
                let total = inner
                    .watch_finished
                    .fetch_add(experiments, Ordering::SeqCst)
                    + experiments;
                // Cumulative "sweep so far" summary: at quiescence the last
                // one reconciles with every batch a watcher accumulated, so
                // `mbfi-monitor --connect` verifies clean.
                inner.watch.push(EventKind::SweepFinished {
                    cells: inner.next_cell.load(Ordering::SeqCst) as usize,
                    experiments: total,
                    wall_ns: inner.watch.start.elapsed().as_nanos() as u64,
                    cow_chunks_copied: 0,
                    cow_restore_bytes_saved: 0,
                });
                entry.finish(result);
                finished = true;
            }
            JobEvent::Finished => break,
        }
    }
    if !finished {
        // The engine died without finalizing the cell (can only happen on a
        // non-graceful teardown); release followers and allow a retry.
        entry.fail();
        inner.cells.evict(&key);
    }
}
