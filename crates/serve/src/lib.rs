//! `mbfi-serve`: the persistent campaign service.
//!
//! Historically every sweep was one process: build the workloads, run the
//! grid, print the report, exit.  A campaign-scale study is better served
//! (literally) by a long-lived daemon that keeps the expensive state —
//! compiled workloads, golden runs, finished cells — warm across requests
//! and multiplexes many tenants onto one machine-sized worker pool.  This
//! crate is that daemon plus its client library, std-only end to end:
//!
//! * [`server`] — a `TcpListener` accept loop over the persistent
//!   [`mbfi_core::SweepEngine`] (the multi-tenant refactor of the sweep
//!   executor: runtime job admission, per-client priorities and fairness
//!   quotas, bounded backpressure, graceful drain).
//! * [`protocol`] — the hand-rolled JSON-lines wire grammar: `submit` /
//!   `watch` / `shutdown` requests, ack/error/report frames, and the
//!   telemetry-schema event stream between them.
//! * [`cache`] — the cross-request dedupe layer: one artefact build per
//!   `(workload, size)` and one *execution* per cell spec, no matter how
//!   many clients ask for it concurrently.  Sound because the executor is
//!   deterministic: a cell's result is a pure function of its spec.
//! * [`client`] — connect/submit/watch/shutdown helpers used by the CLI,
//!   `mbfi-monitor --connect`, the `serve_bench` harness and the
//!   equivalence tests.
//!
//! The load-bearing invariant, pinned by `tests/serve_equivalence.rs` and
//! `serve_bench --check`: a report obtained through the daemon is
//! **byte-identical** to `Sweep::run` of the same grid in-process, at every
//! engine thread count, even when the grid was split across concurrent
//! clients and deduplicated between them.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use client::{shutdown, submit, submit_with, watch, GridRequest, ServeError, ServeOutcome};
pub use protocol::{CellRequest, Request, SubmitRequest};
pub use server::{spawn, ServerConfig, ServerHandle};
