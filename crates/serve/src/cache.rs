//! Shared cross-request caches: compiled workload artifacts and in-flight /
//! completed sweep cells.
//!
//! Two clients submitting overlapping grids must not pay twice.  The daemon
//! dedupes at two levels:
//!
//! * [`ArtifactCache`] — one `(workload, size)` build (module lowering plus
//!   golden-run capture) per process lifetime, with a per-key build lock so
//!   two concurrent first-requests for `qsort/tiny` compile it exactly once.
//! * [`CellCache`] — one *execution* per [`CellKey`] (workload, size, and
//!   the full normalised campaign spec).  The first requester becomes the
//!   owner and submits the engine job; everyone else tails the owner's
//!   [`CellEntry`], replaying its buffered events and blocking on a condvar
//!   until the result lands.  Because the executor is deterministic — the
//!   result is a pure function of the spec, never of thread count or batch
//!   schedule — handing client B client A's bytes *is* running the cell.
//!
//! The cell key deliberately excludes the request's `threads` hint: results
//! are thread-invariant, so normalising `threads` to 0 widens dedupe without
//! risking divergence.

use crate::protocol::CellRequest;
use mbfi_core::{IntervalMethod, SweepCampaignResult, Technique, WinSize};
use mbfi_workloads::InputSize;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

const LOCK_POISONED: &str = "serve cache lock poisoned";

/// Identity of one deduplicatable cell execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    workload: String,
    size: InputSize,
    technique: Technique,
    max_mbf: u32,
    win_size: WinSize,
    experiments: usize,
    seed: u64,
    hang_factor: u64,
    /// `(target_half_width_pct.to_bits(), min, max, interval)` — the f64 is
    /// keyed by its bit pattern so the key stays `Eq + Hash`.
    precision: Option<(u64, usize, usize, IntervalMethod)>,
}

impl CellKey {
    /// Build the key of a request (workload name lower-cased: the registry
    /// lookup is case-insensitive, so `QSort` and `qsort` are one cell).
    pub fn of(req: &CellRequest) -> CellKey {
        CellKey {
            workload: req.workload.to_ascii_lowercase(),
            size: req.size,
            technique: req.technique,
            max_mbf: req.model.max_mbf,
            win_size: req.model.win_size,
            experiments: req.experiments,
            seed: req.seed,
            hang_factor: req.hang_factor,
            precision: req.precision.as_ref().map(|p| {
                (
                    p.target_half_width_pct.to_bits(),
                    p.min_experiments,
                    p.max_experiments,
                    p.interval,
                )
            }),
        }
    }
}

/// One buffered progress event of a cell execution, replayable to any number
/// of followers in the order the owner observed it.
#[derive(Debug, Clone)]
pub enum CellEvent {
    /// Mirrors [`mbfi_core::JobEvent::BatchDone`].
    Batch {
        /// Batch index within the cell.
        batch: usize,
        /// Experiments in the batch.
        experiments: u64,
        /// The batch's outcome tally.
        counts: mbfi_core::OutcomeCounts,
        /// Wall-clock nanoseconds.
        wall_ns: u64,
        /// Engine worker that ran it.
        worker: usize,
    },
    /// Mirrors [`mbfi_core::JobEvent::RoundDone`].
    Round {
        /// 1-based completed round count.
        round: u32,
        /// Merged experiments so far.
        experiments: u64,
        /// SDC half-width, percentage points.
        sdc_half_width_pct: f64,
        /// Detection half-width, percentage points.
        detection_half_width_pct: f64,
        /// Whether the stop rule fired.
        stopped: bool,
    },
}

/// Mutable progress of one cell execution.
#[derive(Debug, Default)]
pub struct CellProgress {
    /// Events observed so far, in order.
    pub events: Vec<CellEvent>,
    /// The final result, once the owner's collector lands it.
    pub result: Option<Arc<SweepCampaignResult>>,
    /// Set when the owning execution died without a result (engine shutdown
    /// mid-job); followers report an error instead of blocking forever.
    pub failed: bool,
}

/// One cell execution: progress guarded by a mutex, completion broadcast on
/// a condvar.
#[derive(Debug, Default)]
pub struct CellEntry {
    progress: Mutex<CellProgress>,
    cond: Condvar,
}

impl CellEntry {
    /// Append an event (owner's collector thread).
    pub fn push_event(&self, event: CellEvent) {
        let mut p = self.progress.lock().expect(LOCK_POISONED);
        p.events.push(event);
        self.cond.notify_all();
    }

    /// Land the final result and wake every follower.
    pub fn finish(&self, result: Arc<SweepCampaignResult>) {
        let mut p = self.progress.lock().expect(LOCK_POISONED);
        p.result = Some(result);
        self.cond.notify_all();
    }

    /// Mark the execution failed (no result will ever land) and wake
    /// followers.
    pub fn fail(&self) {
        let mut p = self.progress.lock().expect(LOCK_POISONED);
        p.failed = true;
        self.cond.notify_all();
    }

    /// Stream the entry to `emit`: every buffered event exactly once, in
    /// order, blocking for more until the result (returned) or a failure
    /// (`None`) lands.
    pub fn tail(&self, mut emit: impl FnMut(&CellEvent)) -> Option<Arc<SweepCampaignResult>> {
        let mut next = 0usize;
        let mut p = self.progress.lock().expect(LOCK_POISONED);
        loop {
            while next < p.events.len() {
                emit(&p.events[next]);
                next += 1;
            }
            if let Some(result) = &p.result {
                return Some(Arc::clone(result));
            }
            if p.failed {
                return None;
            }
            p = self.cond.wait(p).expect(LOCK_POISONED);
        }
    }

    /// The result, if already landed (non-blocking).
    pub fn result(&self) -> Option<Arc<SweepCampaignResult>> {
        self.progress.lock().expect(LOCK_POISONED).result.clone()
    }
}

/// The cross-request cell cache.
#[derive(Debug, Default)]
pub struct CellCache {
    entries: Mutex<HashMap<CellKey, Arc<CellEntry>>>,
}

/// Outcome of a [`CellCache::claim`].
pub enum Claim {
    /// The caller is the first requester: it must execute the cell and feed
    /// the entry (or [`CellEntry::fail`] it).
    Owner(Arc<CellEntry>),
    /// Another request already owns this cell; tail the entry.
    Follower(Arc<CellEntry>),
}

impl CellCache {
    /// Atomically look up or create the entry of `key`.
    pub fn claim(&self, key: CellKey) -> Claim {
        let mut entries = self.entries.lock().expect(LOCK_POISONED);
        match entries.get(&key) {
            Some(entry) => Claim::Follower(Arc::clone(entry)),
            None => {
                let entry = Arc::new(CellEntry::default());
                entries.insert(key, Arc::clone(&entry));
                Claim::Owner(entry)
            }
        }
    }

    /// Drop a failed execution so a later request can retry the cell.
    pub fn evict(&self, key: &CellKey) {
        self.entries.lock().expect(LOCK_POISONED).remove(key);
    }

    /// Number of cached cells (testing / introspection).
    pub fn len(&self) -> usize {
        self.entries.lock().expect(LOCK_POISONED).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-`(workload, size)` build slot: the inner mutex is the *build lock* —
/// two concurrent first-requests for the same artefacts serialise here and
/// the loser finds the winner's build.
#[derive(Debug, Default)]
struct ArtifactSlot {
    unit: Mutex<Option<mbfi_core::EngineUnit>>,
}

/// The cross-request artifact cache: one module lowering plus golden-run
/// capture per `(workload, size)` for the daemon's lifetime.  Failed builds
/// are *not* cached — a later request retries.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    slots: Mutex<HashMap<(String, InputSize), Arc<ArtifactSlot>>>,
}

impl ArtifactCache {
    /// Look up or build the artefacts of `(workload, size)`.  The returned
    /// [`mbfi_core::EngineUnit`] is cheap to clone (all `Arc`s).  `Err` is
    /// the error-frame message.
    pub fn get_or_build(
        &self,
        workload: &str,
        size: InputSize,
    ) -> Result<mbfi_core::EngineUnit, String> {
        let slot = {
            let mut slots = self.slots.lock().expect(LOCK_POISONED);
            Arc::clone(
                slots
                    .entry((workload.to_ascii_lowercase(), size))
                    .or_default(),
            )
        };
        let mut unit = slot.unit.lock().expect(LOCK_POISONED);
        if let Some(unit) = unit.as_ref() {
            return Ok(unit.clone());
        }
        let spec = mbfi_workloads::workload_by_name(workload)
            .ok_or_else(|| format!("unknown workload {workload:?}"))?;
        let module = spec.build_module(size);
        let code = mbfi_ir::CompiledModule::lower(&module);
        let golden = mbfi_core::GoldenRun::capture_compiled(&code)
            .map_err(|e| format!("golden run of {workload:?}/{size} failed: {e:?}"))?;
        let built = mbfi_core::EngineUnit::new(code, golden);
        *unit = Some(built.clone());
        Ok(built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbfi_core::{FaultModel, OutcomeCounts, Precision};

    fn req(seed: u64) -> CellRequest {
        CellRequest {
            workload: "qsort".to_string(),
            size: InputSize::Tiny,
            technique: Technique::InjectOnRead,
            model: FaultModel::single_bit(),
            experiments: 10,
            seed,
            hang_factor: 20,
            precision: None,
        }
    }

    #[test]
    fn keys_normalise_case_and_distinguish_specs() {
        let mut upper = req(1);
        upper.workload = "QSort".to_string();
        assert_eq!(CellKey::of(&req(1)), CellKey::of(&upper));
        assert_ne!(CellKey::of(&req(1)), CellKey::of(&req(2)));

        let mut precise = req(1);
        precise.precision = Some(Precision {
            target_half_width_pct: 5.0,
            ..Precision::default()
        });
        assert_ne!(CellKey::of(&req(1)), CellKey::of(&precise));
    }

    #[test]
    fn first_claim_owns_second_follows() {
        let cache = CellCache::default();
        assert!(cache.is_empty());
        let Claim::Owner(owner) = cache.claim(CellKey::of(&req(1))) else {
            panic!("first claim must own");
        };
        let Claim::Follower(follower) = cache.claim(CellKey::of(&req(1))) else {
            panic!("second claim must follow");
        };
        assert_eq!(cache.len(), 1);

        // Follower sees buffered events, then blocks until the result lands.
        owner.push_event(CellEvent::Batch {
            batch: 0,
            experiments: 10,
            counts: OutcomeCounts::default(),
            wall_ns: 1,
            worker: 0,
        });
        let waiter = std::thread::spawn(move || {
            let mut seen = 0;
            let result = follower.tail(|_| seen += 1);
            (seen, result.is_some())
        });
        let result = Arc::new(SweepCampaignResult {
            result: mbfi_core::CampaignResult {
                spec: req(1).spec(),
                counts: OutcomeCounts::default(),
                activation_histogram: vec![],
                crash_activation_histogram: vec![],
                warnings: vec![],
                adaptive: None,
            },
            records: vec![],
        });
        owner.finish(result);
        let (seen, got) = waiter.join().unwrap();
        assert_eq!(seen, 1);
        assert!(got);
    }

    #[test]
    fn failed_executions_wake_followers_and_can_retry() {
        let cache = CellCache::default();
        let key = CellKey::of(&req(7));
        let Claim::Owner(owner) = cache.claim(key.clone()) else {
            panic!("first claim must own");
        };
        let Claim::Follower(follower) = cache.claim(key.clone()) else {
            panic!("second claim must follow");
        };
        let waiter = std::thread::spawn(move || follower.tail(|_| {}).is_none());
        owner.fail();
        assert!(waiter.join().unwrap(), "follower sees the failure");
        cache.evict(&key);
        assert!(matches!(cache.claim(key), Claim::Owner(_)), "retry owns");
    }

    #[test]
    fn artifacts_build_once_and_reject_unknown_workloads() {
        let cache = ArtifactCache::default();
        let first = cache.get_or_build("qsort", InputSize::Tiny).unwrap();
        let second = cache.get_or_build("QSORT", InputSize::Tiny).unwrap();
        assert!(
            Arc::ptr_eq(&first.code, &second.code),
            "case-insensitive hit shares the build"
        );
        let err = cache.get_or_build("qsrot", InputSize::Tiny).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
    }
}
