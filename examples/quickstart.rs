//! Quickstart: build a tiny program, run a single bit-flip campaign against
//! it with both injection techniques, and print the outcome breakdown.
//!
//! Run with: `cargo run -p mbfi-bench --example quickstart`

use mbfi_core::{Campaign, CampaignSpec, FaultModel, GoldenRun, Outcome, Technique};
use mbfi_ir::{ModuleBuilder, Type};

fn main() {
    // 1. Build a program with the IR builder: it fills an array with squares
    //    and prints the sum (the observable output used for SDC detection).
    let mut mb = ModuleBuilder::new("quickstart");
    let main = mb.declare("main", &[], None);
    {
        let mut f = mb.define(main);
        let data = f.alloca(Type::I64, 64i64);
        f.counted_loop(Type::I64, 0i64, 64i64, |f, i| {
            let sq = f.mul(Type::I64, i, i);
            f.store_elem(Type::I64, data, i, sq);
        });
        let acc = f.slot(Type::I64);
        f.store(Type::I64, 0i64, acc);
        f.counted_loop(Type::I64, 0i64, 64i64, |f, i| {
            let v = f.load_elem(Type::I64, data, i);
            let cur = f.load(Type::I64, acc);
            let next = f.add(Type::I64, cur, v);
            f.store(Type::I64, next, acc);
        });
        let total = f.load(Type::I64, acc);
        f.print_i64(total);
        f.ret_void();
    }
    mb.set_entry(main);
    let module = mb.finish();

    // 2. Capture the golden (fault-free) run: output, dynamic instruction
    //    count and the injection candidate counts.
    let golden = GoldenRun::capture(&module).expect("the quickstart program must run cleanly");
    println!(
        "golden output        : {}",
        String::from_utf8_lossy(&golden.output).trim()
    );
    println!("dynamic instructions : {}", golden.dynamic_instrs);
    println!(
        "injection candidates : {} (read), {} (write)\n",
        golden.candidates(Technique::InjectOnRead),
        golden.candidates(Technique::InjectOnWrite)
    );

    // 3. Run a single bit-flip campaign with each technique.
    for technique in Technique::ALL {
        let spec = CampaignSpec {
            technique,
            model: FaultModel::single_bit(),
            experiments: 400,
            seed: 2024,
            hang_factor: 20,
            threads: 0,
        };
        let result = Campaign::run(&module, &golden, &spec);
        println!("{technique} — {} experiments", result.total());
        for outcome in Outcome::ALL {
            println!(
                "  {:<14} {:>5.1}%",
                outcome.to_string(),
                result.counts.fraction(outcome) * 100.0
            );
        }
        let sdc = result.sdc_proportion();
        println!(
            "  SDC = {:.1}% ± {:.1} (95% CI), error resilience = {:.3}\n",
            sdc.percentage(),
            sdc.half_width_pct(),
            result.counts.resilience()
        );
    }
}
