//! Shows how to plug a brand-new workload into the study: implement the
//! `Workload` trait for your own program, then run the same campaigns the
//! paper runs against the built-in benchmarks.
//!
//! Run with: `cargo run --release -p mbfi-bench --example custom_workload`

use mbfi_core::{Campaign, CampaignSpec, FaultModel, GoldenRun, Technique, WinSize};
use mbfi_ir::{IcmpPred, Module, ModuleBuilder, Type};
use mbfi_workloads::{InputSize, Suite, Workload};

/// A workload computing the Collatz trajectory lengths of 1..=N and printing
/// the longest one (plus a checksum of all lengths).
struct Collatz;

impl Workload for Collatz {
    fn name(&self) -> &'static str {
        "collatz"
    }
    fn package(&self) -> &'static str {
        "custom"
    }
    fn suite(&self) -> Suite {
        Suite::MiBench
    }
    fn description(&self) -> &'static str {
        "Collatz trajectory lengths for 1..=N"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let n: i64 = match size {
            InputSize::Tiny => 60,
            InputSize::Small => 200,
        };
        let mut mb = ModuleBuilder::new("collatz");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let longest = f.slot(Type::I64);
            f.store(Type::I64, 0i64, longest);
            let checksum = f.slot(Type::I64);
            f.store(Type::I64, 0i64, checksum);

            f.counted_loop(Type::I64, 1i64, n + 1, |f, start| {
                let x = f.slot(Type::I64);
                f.store(Type::I64, start, x);
                let steps = f.slot(Type::I64);
                f.store(Type::I64, 0i64, steps);

                let head = f.new_block("collatz.head");
                let body = f.new_block("collatz.body");
                let exit = f.new_block("collatz.exit");
                f.br(head);

                f.switch_to(head);
                let xv = f.load(Type::I64, x);
                let more = f.icmp(IcmpPred::Sgt, Type::I64, xv, 1i64);
                f.cond_br(more, body, exit);

                f.switch_to(body);
                let xv2 = f.load(Type::I64, x);
                let is_odd = f.and(Type::I64, xv2, 1i64);
                let odd = f.icmp(IcmpPred::Ne, Type::I64, is_odd, 0i64);
                let tripled = f.mul(Type::I64, xv2, 3i64);
                let plus1 = f.add(Type::I64, tripled, 1i64);
                let halved = f.sdiv(Type::I64, xv2, 2i64);
                let next = f.select(Type::I64, odd, plus1, halved);
                f.store(Type::I64, next, x);
                let s = f.load(Type::I64, steps);
                let s2 = f.add(Type::I64, s, 1i64);
                f.store(Type::I64, s2, steps);
                f.br(head);

                f.switch_to(exit);
                let s = f.load(Type::I64, steps);
                let best = f.load(Type::I64, longest);
                let better = f.icmp(IcmpPred::Sgt, Type::I64, s, best);
                f.if_then(better, |f| {
                    f.store(Type::I64, s, longest);
                });
                let cs = f.load(Type::I64, checksum);
                let cs2 = f.add(Type::I64, cs, s);
                f.store(Type::I64, cs2, checksum);
            });

            let l = f.load(Type::I64, longest);
            f.print_i64(l);
            let cs = f.load(Type::I64, checksum);
            f.print_i64(cs);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let n: i64 = match size {
            InputSize::Tiny => 60,
            InputSize::Small => 200,
        };
        let mut longest = 0i64;
        let mut checksum = 0i64;
        for start in 1..=n {
            let mut x = start;
            let mut steps = 0i64;
            while x > 1 {
                x = if x % 2 != 0 { 3 * x + 1 } else { x / 2 };
                steps += 1;
            }
            longest = longest.max(steps);
            checksum += steps;
        }
        format!("{longest}\n{checksum}\n").into_bytes()
    }
}

fn main() {
    let workload = Collatz;
    let module = workload.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).expect("collatz golden run");

    // Sanity check against the independent oracle, exactly like the built-in
    // workloads are tested.
    assert_eq!(
        golden.output,
        workload.reference_output(InputSize::Tiny),
        "IR implementation must match the Rust oracle"
    );
    println!(
        "collatz: {} dynamic instructions, output = {:?}",
        golden.dynamic_instrs,
        String::from_utf8_lossy(&golden.output)
            .trim()
            .replace('\n', " / ")
    );

    // Compare the single-bit and a multi-bit model on the custom workload.
    for model in [
        FaultModel::single_bit(),
        FaultModel::multi_bit(3, WinSize::Fixed(1)),
    ] {
        let result = Campaign::run(
            &module,
            &golden,
            &CampaignSpec {
                technique: Technique::InjectOnWrite,
                model,
                experiments: 300,
                seed: 5,
                hang_factor: 20,
                threads: 0,
            },
        );
        println!(
            "inject-on-write {:<10} SDC = {:>5.1}%  detection = {:>5.1}%  benign = {:>5.1}%  mean activated = {:.2}",
            model.label(),
            result.sdc_pct(),
            result.counts.detection_pct(),
            result.counts.fraction(mbfi_core::Outcome::Benign) * 100.0,
            result.mean_activated()
        );
    }
}
