//! A miniature version of the paper's study on real workloads: compare the
//! single bit-flip model against multiple bit-flip configurations on a few
//! MiBench/Parboil-style programs and report which model is pessimistic.
//!
//! Run with: `cargo run --release -p mbfi-bench --example resilience_study`
//!
//! Environment knobs: `MBFI_EXPERIMENTS` (default 120), `MBFI_WORKLOADS`
//! (default "qsort,CRC32,dijkstra,histo").

use mbfi_core::pruning::PessimisticAnalysis;
use mbfi_core::{Campaign, CampaignSpec, FaultModel, GoldenRun, Technique, WinSize};
use mbfi_workloads::{workload_by_name, InputSize};

fn main() {
    let experiments: usize = std::env::var("MBFI_EXPERIMENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let names = std::env::var("MBFI_WORKLOADS")
        .unwrap_or_else(|_| "qsort,CRC32,dijkstra,histo".to_string());

    println!(
        "{:<16} {:<14} {:>12} {:>12} {:>14} {:>8}",
        "program", "technique", "1-bit SDC%", "worst SDC%", "worst config", "enough"
    );
    println!("{}", "-".repeat(84));

    for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let workload = match workload_by_name(name) {
            Some(w) => w,
            None => {
                eprintln!("unknown workload '{name}', skipping");
                continue;
            }
        };
        let module = workload.build_module(InputSize::Tiny);
        let golden = GoldenRun::capture(&module).expect("workload golden run");

        for technique in Technique::ALL {
            let spec = |model| CampaignSpec {
                technique,
                model,
                experiments,
                seed: 77,
                hang_factor: 20,
                threads: 0,
            };
            let single = Campaign::run(&module, &golden, &spec(FaultModel::single_bit()));
            let mut multi = Vec::new();
            for max_mbf in [2u32, 3, 5, 10] {
                for win in [WinSize::Fixed(1), WinSize::Fixed(100)] {
                    multi.push(Campaign::run(
                        &module,
                        &golden,
                        &spec(FaultModel::multi_bit(max_mbf, win)),
                    ));
                }
            }
            let cmp = PessimisticAnalysis::default().compare(&single, &multi);
            println!(
                "{:<16} {:<14} {:>12.2} {:>12.2} {:>14} {:>8}",
                workload.name(),
                technique.short_name(),
                cmp.single_bit_sdc_pct,
                cmp.worst_multi.sdc_pct,
                cmp.worst_multi.model.label(),
                if cmp.single_bit_is_pessimistic {
                    "1 bit"
                } else {
                    "multi"
                }
            );
        }
    }

    println!(
        "\n'enough' = whether the single bit-flip model already gives a pessimistic \
(conservative) SDC estimate for that program/technique, the paper's RQ2."
    );
}
