//! Walkthrough of the checkpointed golden-run replay engine: run the same
//! campaign with and without a checkpoint store and print the measured
//! speedup plus proof that the results are byte-identical.
//!
//! Run with: `cargo run --release -p mbfi-bench --example replay_speedup`

use mbfi_core::replay::{CheckpointConfig, CheckpointStore};
use mbfi_core::{Campaign, CampaignSpec, FaultModel, GoldenRun, Technique, WinSize};
use mbfi_workloads::{workload_by_name, InputSize};
use std::time::Instant;

fn main() {
    // 1. Prepare a real workload and its golden run, exactly as any campaign
    //    would.
    let workload = workload_by_name("dijkstra").expect("dijkstra is in the registry");
    let module = workload.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).expect("golden run");
    println!("workload             : {}", workload.name());
    println!("golden instructions  : {}", golden.dynamic_instrs);

    // 2. Capture golden-run checkpoints.  The interval is the knob: smaller
    //    means less tail to replay per experiment but more capture time and
    //    memory.  The store enforces a byte budget and simply stops adding
    //    checkpoints when it is reached.
    let interval = (golden.dynamic_instrs / 128).max(1);
    let config = CheckpointConfig {
        interval,
        max_bytes: 64 << 20,
    };
    let capture_start = Instant::now();
    let store = CheckpointStore::capture(&module, &golden, config).expect("capture");
    println!(
        "checkpoints          : {} every {} instrs ({:.1} MiB, captured in {:.1} ms)",
        store.len(),
        store.interval(),
        store.stored_bytes() as f64 / (1 << 20) as f64,
        capture_start.elapsed().as_secs_f64() * 1e3
    );

    // 3. Run the same campaign twice: full re-execution vs replay.
    let spec = CampaignSpec {
        technique: Technique::InjectOnRead,
        model: FaultModel::multi_bit(3, WinSize::Fixed(10)),
        experiments: 300,
        seed: 0xD1785EED,
        hang_factor: 10,
        threads: 0,
    };
    let t = Instant::now();
    let full = Campaign::run(&module, &golden, &spec);
    let full_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let replayed = Campaign::run_with_store(&module, &golden, &spec, Some(&store));
    let replay_secs = t.elapsed().as_secs_f64();

    // 4. The determinism contract: identical results, field for field.
    assert_eq!(full, replayed, "replay must be byte-identical");
    println!("full re-execution    : {full_secs:.3} s");
    println!("checkpointed replay  : {replay_secs:.3} s");
    println!(
        "speedup              : {:.2}x",
        full_secs / replay_secs.max(1e-9)
    );
    println!(
        "results identical    : {} experiments, SDC {:.1}%, outcome counts match",
        full.total(),
        full.sdc_pct()
    );
}
