//! Demonstrates the paper's third pruning layer (RQ5): use single bit-flip
//! outcomes to decide where multi-bit injections are worth running.
//!
//! Run with: `cargo run --release -p mbfi-bench --example pruning_demo`

use mbfi_core::pruning::LocationAnalysis;
use mbfi_core::{FaultModel, GoldenRun, Outcome, Technique, WinSize};
use mbfi_workloads::{workload_by_name, InputSize};

fn main() {
    let pairs: usize = std::env::var("MBFI_EXPERIMENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);

    for name in ["qsort", "stringsearch", "histo"] {
        let workload = workload_by_name(name).expect("registered workload");
        let module = workload.build_module(InputSize::Tiny);
        let golden = GoldenRun::capture(&module).expect("golden run");

        println!("== {} ==", workload.name());
        for technique in Technique::ALL {
            // The worst-case multi-bit configuration the paper uses for this
            // analysis is taken from Table III; three flips one instruction
            // apart is representative for inject-on-write, two flips a larger
            // window apart for inject-on-read.
            let worst = if technique.is_write() {
                FaultModel::multi_bit(3, WinSize::Fixed(1))
            } else {
                FaultModel::multi_bit(2, WinSize::Fixed(100))
            };
            let analysis = LocationAnalysis::run(&module, &golden, technique, worst, pairs, 9, 20);

            println!(
                "  {technique}: Transition I (Detection→SDC) = {:.1}%, \
Transition II (Benign→SDC) = {:.1}%",
                analysis.transition1() * 100.0,
                analysis.transition2() * 100.0
            );
            println!(
                "    single-bit outcomes at the sampled locations: benign {:.0}%, detection {:.0}%, sdc {:.0}%",
                analysis.matrix.total_from(Outcome::Benign) as f64 / analysis.matrix.total() as f64 * 100.0,
                analysis.matrix.total_from_detection() as f64 / analysis.matrix.total() as f64 * 100.0,
                analysis.matrix.total_from(Outcome::Sdc) as f64 / analysis.matrix.total() as f64 * 100.0,
            );
            println!(
                "    => {:.1}% of locations can be pruned from multi-bit campaigns \
(their single-bit outcome was Detection or SDC)",
                analysis.prunable_fraction() * 100.0
            );
        }
        println!();
    }
}
